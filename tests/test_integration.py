"""Cross-module integration tests: full pipelines on realistic workloads."""

import numpy as np
import pytest

from repro import LazyLSH, LazyLSHConfig, MultiQueryEngine
from repro.baselines import C2LSH, SRS, LinearScan
from repro.baselines.c2lsh import C2LSHConfig
from repro.baselines.srs import SRSConfig
from repro.datasets import (
    exact_knn,
    inria_like,
    make_labeled_dataset,
    sample_queries,
)
from repro.eval import classification_accuracy, overall_ratio, recall_at_k


@pytest.fixture(scope="module")
def feature_split():
    features = inria_like(n=2500, seed=17)
    return sample_queries(features, n_queries=4, seed=18)


@pytest.fixture(scope="module")
def lazy_index(feature_split) -> LazyLSH:
    cfg = LazyLSHConfig(c=3.0, p_min=0.5, seed=19, mc_samples=20_000, mc_buckets=100)
    return LazyLSH(cfg).build(feature_split.data)


class TestRetrievalPipeline:
    def test_lazylsh_beats_trivial_baseline(self, lazy_index, feature_split):
        # The returned neighbours must be far closer than random points.
        rng = np.random.default_rng(3)
        for p in (0.5, 1.0):
            _, true_dists = exact_knn(feature_split.data, feature_split.queries, 10, p)
            for qi, query in enumerate(feature_split.queries):
                result = lazy_index.knn(query, 10, p=p)
                random_ids = rng.choice(feature_split.data.shape[0], 10, replace=False)
                from repro.metrics.lp import lp_distance

                random_dists = np.sort(
                    lp_distance(feature_split.data[random_ids], query, p)
                )
                assert result.distances.mean() < random_dists.mean()
                assert overall_ratio(result.distances, true_dists[qi]) < 2.0

    def test_engines_agree_on_easy_neighbours(self, feature_split, lazy_index):
        # All engines should find the same nearest neighbour for a point
        # that has an unambiguous closest match.
        c2 = C2LSH(C2LSHConfig(c=3.0, seed=19)).build(feature_split.data)
        srs = SRS(SRSConfig(seed=19)).build(feature_split.data)
        scan = LinearScan(feature_split.data)
        query = feature_split.data[0]  # indexed point: NN is itself
        assert lazy_index.knn(query, 1, p=1.0).ids[0] == 0
        assert c2.knn(query, 1, p=1.0).ids[0] == 0
        assert srs.knn(query, 1, p=2.0).ids[0] == 0
        assert scan.knn(query, 1, p=1.0).ids[0] == 0

    def test_io_ordering_matches_figure9(self, lazy_index, feature_split):
        # Fractional queries pay more I/O than l1 queries on the same
        # index (higher threshold, more hash functions consulted).
        io_by_p = {}
        for p in (0.5, 0.7, 1.0):
            totals = [
                lazy_index.knn(q, 10, p=p).io.total for q in feature_split.queries
            ]
            io_by_p[p] = float(np.mean(totals))
        assert io_by_p[0.5] > io_by_p[0.7] > io_by_p[1.0]

    def test_recall_reasonable_at_k100(self, lazy_index, feature_split):
        true_ids, _ = exact_knn(feature_split.data, feature_split.queries, 100, 0.5)
        recalls = []
        for qi, query in enumerate(feature_split.queries):
            result = lazy_index.knn(query, 100, p=0.5)
            recalls.append(recall_at_k(result.ids, true_ids[qi]))
        assert float(np.mean(recalls)) > 0.5


class TestMultiQueryPipeline:
    def test_figure12_shape(self, lazy_index, feature_split):
        engine = MultiQueryEngine(lazy_index)
        metrics = [0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
        for query in feature_split.queries[:2]:
            batch = engine.knn(query, 10, metrics=metrics)
            single = lazy_index.knn(query, 10, p=0.5)
            separate = sum(lazy_index.knn(query, 10, p=p).io.total for p in metrics)
            # Batch is close to the single l0.5 cost and far below the
            # separate-queries cost.
            assert batch.io.total < 0.6 * separate
            assert batch.io.total <= 1.6 * single.io.total


class TestClassificationPipeline:
    def test_table1_shape_on_one_dataset(self):
        # The approximate classifier lands within a few points of the
        # exact one — Table 1's headline observation.
        ds = make_labeled_dataset("bcw", seed=7)
        x_tr, y_tr, x_te, y_te = ds.split(60, seed=1)
        exact = classification_accuracy(x_tr, y_tr, x_te, y_te, k=1, p=1.0)
        cfg = LazyLSHConfig(
            c=3.0, p_min=0.5, seed=7, mc_samples=20_000, mc_buckets=100
        )
        index = LazyLSH(cfg).build(x_tr)
        approx = classification_accuracy(
            x_tr, y_tr, x_te, y_te, k=1, p=1.0, retriever=index
        )
        assert abs(exact - approx) <= 0.1

    def test_fractional_metrics_usable_for_classification(self):
        ds = make_labeled_dataset("ionosphere", seed=7)
        x_tr, y_tr, x_te, y_te = ds.split(40, seed=1)
        cfg = LazyLSHConfig(
            c=3.0, p_min=0.5, seed=7, mc_samples=20_000, mc_buckets=100
        )
        index = LazyLSH(cfg).build(x_tr)
        for p in (0.5, 0.8):
            acc = classification_accuracy(
                x_tr, y_tr, x_te, y_te, k=1, p=p, retriever=index
            )
            assert acc > 0.6  # far above the 50% coin flip


class TestIndexReuseAcrossMetrics:
    def test_one_build_many_metrics(self, lazy_index, feature_split):
        # The central promise: a single materialised index answers every
        # supported metric without rebuilding.
        eta_before = lazy_index.eta
        size_before = lazy_index.index_size_mb()
        for p in (0.5, 0.6, 0.8, 1.0):
            lazy_index.knn(feature_split.queries[0], 5, p=p)
        assert lazy_index.eta == eta_before
        assert lazy_index.index_size_mb() == size_before
