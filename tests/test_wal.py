"""Tests for the durable update plane (repro.durability).

Covers the WAL on-disk format (framing, segmentation, torn-tail
truncation), the journal-then-apply contract of ``DurableIndex``,
checkpoint/recovery equivalence, the read-only ``WalFeed`` tail, and
live propagation of WAL records into the sharded service — which must
stay bit-identical to a single-process index that applied the same
records (DESIGN.md section 11).
"""

import numpy as np
import pytest

from repro import LazyLSH, LazyLSHConfig
from repro.datasets import make_synthetic
from repro.durability import (
    CHECKPOINT_SUBDIR,
    WAL_SUBDIR,
    DurableIndex,
    RecoveryError,
    WalCorruptionError,
    WalFeed,
    WriteAheadLog,
    create,
    latest_checkpoint,
    list_checkpoints,
    recover,
)
from repro.durability.checkpoint import (
    _reference_index_from,
    checkpoint_now,
    states_identical,
)
from repro.durability.wal import list_segments
from repro.errors import InvalidParameterError, ReproError

CFG = dict(c=3.0, p_min=0.7, seed=41, mc_samples=10_000, mc_buckets=60)


def _build(n=240, d=10, seed=40):
    data = make_synthetic(n, d, value_range=(0, 200), seed=seed)
    return LazyLSH(LazyLSHConfig(**CFG)).build(data), data


def _batch(m, d=10, seed=50):
    return np.random.default_rng(seed).uniform(0.0, 200.0, size=(m, d))


class TestFraming:
    def test_append_replay_round_trip(self, tmp_path):
        points = _batch(3)
        with WriteAheadLog(tmp_path, sync=False) as wal:
            lsn1 = wal.append_insert(points, np.arange(240, 243))
            lsn2 = wal.append_remove(np.array([7, 11]))
            assert (lsn1, lsn2) == (1, 2)
        with WriteAheadLog(tmp_path, sync=False) as wal:
            records = list(wal.replay())
            assert [r.lsn for r in records] == [1, 2]
            assert [r.op for r in records] == ["insert", "remove"]
            np.testing.assert_array_equal(records[0].ids, [240, 241, 242])
            np.testing.assert_array_equal(records[0].points, points)
            np.testing.assert_array_equal(records[1].ids, [7, 11])
            assert records[1].points is None
            assert wal.last_lsn == 2

    def test_segment_rotation_and_partial_replay(self, tmp_path):
        with WriteAheadLog(tmp_path, sync=False, segment_bytes=256) as wal:
            for i in range(12):
                wal.append_insert(_batch(2, seed=i), np.arange(2 * i, 2 * i + 2))
        segments = list_segments(tmp_path)
        assert len(segments) > 1
        assert segments[0][0] == 1  # named by their first LSN
        with WriteAheadLog(tmp_path, sync=False, segment_bytes=256) as wal:
            assert [r.lsn for r in wal.replay()] == list(range(1, 13))
            assert [r.lsn for r in wal.replay(start_lsn=7)] == list(range(8, 13))
            assert wal.append_remove(np.array([0])) == 13

    def test_fsync_toggle_both_commit(self, tmp_path):
        for sync, sub in ((True, "a"), (False, "b")):
            with WriteAheadLog(tmp_path / sub, sync=sync) as wal:
                wal.append_remove(np.array([1]))
            with WriteAheadLog(tmp_path / sub, sync=False) as wal:
                assert wal.last_lsn == 1


class TestTornTail:
    def _write_three(self, directory):
        with WriteAheadLog(directory, sync=False) as wal:
            for i in range(3):
                wal.append_insert(_batch(2, seed=i), np.arange(2 * i, 2 * i + 2))

    def test_garbage_tail_truncated(self, tmp_path):
        self._write_three(tmp_path)
        (_, path), = list_segments(tmp_path)
        clean_size = path.stat().st_size
        with path.open("ab") as fh:
            fh.write(b"\x01\x02\x03partial-frame")
        with WriteAheadLog(tmp_path, sync=False) as wal:
            assert wal.last_lsn == 3
            assert wal.torn_bytes_dropped > 0
            assert path.stat().st_size == clean_size
            # The log stays appendable after truncation.
            assert wal.append_remove(np.array([0])) == 4

    def test_corrupt_tail_record_dropped(self, tmp_path):
        self._write_three(tmp_path)
        (_, path), = list_segments(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0xFF  # flip a byte inside the last record's body
        path.write_bytes(bytes(raw))
        with WriteAheadLog(tmp_path, sync=False) as wal:
            assert wal.last_lsn == 2
            assert wal.torn_bytes_dropped > 0

    def test_non_tail_corruption_raises(self, tmp_path):
        with WriteAheadLog(tmp_path, sync=False, segment_bytes=256) as wal:
            for i in range(12):
                wal.append_insert(_batch(2, seed=i), np.arange(2 * i, 2 * i + 2))
        segments = list_segments(tmp_path)
        assert len(segments) > 2
        _, victim = segments[0]
        raw = bytearray(victim.read_bytes())
        raw[10] ^= 0xFF
        victim.write_bytes(bytes(raw))
        with pytest.raises(WalCorruptionError):
            WriteAheadLog(tmp_path, sync=False)


class TestDurableIndex:
    def test_journal_then_apply(self, tmp_path):
        index, _data = _build()
        wal = WriteAheadLog(tmp_path, sync=False)
        durable = DurableIndex(index, wal)
        seen = []
        durable.subscribe(seen.append)
        ids = durable.insert(_batch(4))
        np.testing.assert_array_equal(ids, np.arange(240, 244))
        durable.remove([3, 9])
        durable.close()
        assert [r.lsn for r in seen] == [1, 2]
        assert index.num_points == 242
        with WriteAheadLog(tmp_path, sync=False) as reopened:
            ops = [(r.op, r.ids.tolist()) for r in reopened.replay()]
        assert ops == [("insert", [240, 241, 242, 243]), ("remove", [3, 9])]

    def test_validation_failure_writes_nothing(self, tmp_path):
        index, _data = _build()
        durable = DurableIndex(index, WriteAheadLog(tmp_path, sync=False))
        with pytest.raises(InvalidParameterError):
            durable.remove([5, 10_000])
        with pytest.raises(InvalidParameterError):
            durable.insert(np.full((1, 10), np.nan))
        assert durable.last_lsn == 0
        assert index.num_points == 240
        assert index._alive[5]
        durable.close()


@pytest.fixture
def home(tmp_path):
    """A durable home with a built index, 3 inserts and 1 remove."""
    index, data = _build()
    durable = create(index, tmp_path, sync=False)
    for i in range(3):
        durable.insert(_batch(4, seed=60 + i))
    durable.remove([2, 17, 241])
    durable.close()
    return tmp_path, data


class TestRecovery:
    def test_recover_matches_full_replay_reference(self, home):
        directory, data = home
        durable, report = recover(directory, sync=False)
        reference = _reference_index_from(directory)
        assert states_identical(
            durable.index, reference, queries=data[:3], k=5
        )
        assert report["checkpoint_lsn"] == 0
        assert report["replayed_records"] == 4
        assert report["live_points"] == 249
        durable.close()

    def test_recover_with_torn_tail_uses_acked_prefix(self, home):
        directory, data = home
        segments = list_segments(directory / WAL_SUBDIR)
        with segments[-1][1].open("ab") as fh:
            fh.write(b"crashed-mid-append")
        durable, report = recover(directory, sync=False)
        assert report["torn_tail_bytes_dropped"] > 0
        assert report["replayed_records"] == 4
        assert states_identical(
            durable.index, _reference_index_from(directory), queries=data[:2]
        )
        durable.close()

    def test_checkpoint_prunes_and_recovers(self, home):
        directory, data = home
        durable, _ = recover(directory, sync=False)
        checkpoint_now(durable, directory)
        durable.insert(_batch(2, seed=70))
        final_lsn = durable.last_lsn
        expected = durable.index
        durable.close()
        recovered, report = recover(directory, sync=False)
        assert report["checkpoint_lsn"] == 4
        assert report["replayed_records"] == final_lsn - 4
        assert states_identical(recovered.index, expected, queries=data[:2])
        recovered.close()
        # The pruned log can no longer support a full-history reference.
        lsns = [lsn for lsn, _ in list_checkpoints(directory / CHECKPOINT_SUBDIR)]
        assert 0 in lsns and 4 in lsns

    def test_mid_checkpoint_crash_falls_back(self, home):
        directory, data = home
        durable, _ = recover(directory, sync=False)
        path = checkpoint_now(durable, directory)
        durable.close()
        # Simulate a crash mid-checkpoint: a half-written tmp- file plus
        # a truncated (corrupt) newest checkpoint.
        ckpt_dir = directory / CHECKPOINT_SUBDIR
        (ckpt_dir / "tmp-checkpoint-00000000000000000099.npz").write_bytes(
            path.read_bytes()[:100]
        )
        good = path.read_bytes()
        path.write_bytes(good[: len(good) // 2])
        recovered, report = recover(directory, sync=False)
        assert report["checkpoint_lsn"] == 0
        assert [s for s in report["checkpoints_skipped"]]
        assert recovered.index.num_points == 249
        recovered.close()
        # Restore the newest checkpoint: recovery prefers it again.
        path.write_bytes(good)
        recovered, report = recover(directory, sync=False)
        assert report["checkpoint_lsn"] == 4
        assert report["checkpoints_skipped"] == []
        recovered.close()

    def test_latest_checkpoint_skips_header_mismatch(self, home):
        directory, _data = home
        ckpt_dir = directory / CHECKPOINT_SUBDIR
        found = latest_checkpoint(ckpt_dir)
        assert found is not None and found[0] == 0
        # A checkpoint renamed to claim a later LSN is not trusted.
        lied = ckpt_dir / "checkpoint-00000000000000000009.npz"
        lied.write_bytes(found[1].read_bytes())
        assert latest_checkpoint(ckpt_dir)[0] == 0

    def test_recover_empty_directory_raises(self, tmp_path):
        with pytest.raises(RecoveryError):
            recover(tmp_path / "nothing")

    def test_create_refuses_existing_home(self, home):
        directory, _data = home
        index, _ = _build()
        with pytest.raises(InvalidParameterError):
            create(index, directory, sync=False)


class TestWalFeed:
    def test_poll_is_incremental_and_idempotent(self, tmp_path):
        wal = WriteAheadLog(tmp_path, sync=False, segment_bytes=256)
        feed = WalFeed(tmp_path)
        assert feed.poll() == []
        for i in range(5):
            wal.append_insert(_batch(2, seed=i), np.arange(2 * i, 2 * i + 2))
        first = feed.poll()
        assert [r.lsn for r in first] == [1, 2, 3, 4, 5]
        assert feed.poll() == []
        # New records after rotation are still picked up.
        for i in range(5, 9):
            wal.append_insert(_batch(2, seed=i), np.arange(2 * i, 2 * i + 2))
        assert [r.lsn for r in feed.poll()] == [6, 7, 8, 9]
        assert feed.lag() == 0
        wal.close()

    def test_start_lsn_skips_checkpointed_prefix(self, tmp_path):
        with WriteAheadLog(tmp_path, sync=False) as wal:
            for i in range(4):
                wal.append_remove(np.array([i]))
        feed = WalFeed(tmp_path, start_lsn=2)
        assert [r.lsn for r in feed.poll()] == [3, 4]

    def test_resume_across_rotation_between_polls(self, tmp_path):
        # Regression: the writer rotates to a new segment *between* two
        # polls; the resumed poll must step from the drained segment to
        # the new one without skipping or replaying a record.
        wal = WriteAheadLog(tmp_path, sync=False, segment_bytes=256)
        feed = WalFeed(tmp_path)
        for i in range(3):
            wal.append_remove(np.array([i]))
        assert [r.lsn for r in feed.poll()] == [1, 2, 3]
        before = len(list_segments(tmp_path))
        lsn = 3
        while len(list_segments(tmp_path)) == before:
            lsn = wal.append_remove(np.array([lsn]))
        assert [r.lsn for r in feed.poll()] == list(range(4, lsn + 1))
        assert feed.poll() == [] and feed.lag() == 0
        wal.close()

    def test_max_records_stop_resumes_across_rotation(self, tmp_path):
        # One-record polls walk the whole multi-segment log exactly
        # once even though every poll stops mid-segment.
        with WriteAheadLog(tmp_path, sync=False, segment_bytes=256) as wal:
            for i in range(12):
                wal.append_insert(
                    _batch(2, seed=i), np.arange(2 * i, 2 * i + 2)
                )
        assert len(list_segments(tmp_path)) > 1
        feed = WalFeed(tmp_path)
        seen = []
        while chunk := feed.poll(max_records=1):
            seen.extend(r.lsn for r in chunk)
        assert seen == list(range(1, 13))

    def test_torn_tail_completed_between_polls(self, tmp_path):
        from repro.durability import WalRecord, encode_wal_record

        with WriteAheadLog(tmp_path, sync=False) as wal:
            for i in range(3):
                wal.append_remove(np.array([i]))
        feed = WalFeed(tmp_path)
        assert [r.lsn for r in feed.poll()] == [1, 2, 3]
        frame = encode_wal_record(
            WalRecord(lsn=4, op="remove", ids=np.array([9]))
        )
        segment = list_segments(tmp_path)[-1][1]
        with segment.open("ab") as handle:
            handle.write(frame[: len(frame) // 2])
        assert feed.poll() == []  # torn tail: wait for the writer
        with segment.open("ab") as handle:
            handle.write(frame[len(frame) // 2 :])
        assert [r.lsn for r in feed.poll()] == [4]

    @staticmethod
    def _write_segment(directory, lsns):
        """Hand-build one segment file holding remove records ``lsns``."""
        from repro.durability import WalRecord, encode_wal_record

        path = directory / f"segment-{lsns[0]:020d}.wal"
        path.write_bytes(
            b"".join(
                encode_wal_record(
                    WalRecord(lsn=lsn, op="remove", ids=np.array([lsn]))
                )
                for lsn in lsns
            )
        )
        return path

    def test_prune_of_consumed_segments_relocates(self, tmp_path):
        # Pruning a segment the feed already fully delivered must not
        # disturb it: the next poll relocates to the surviving segment.
        seg_a = self._write_segment(tmp_path, [1, 2, 3, 4])
        self._write_segment(tmp_path, [5, 6, 7, 8])
        feed = WalFeed(tmp_path)
        assert [r.lsn for r in feed.poll(max_records=4)] == [1, 2, 3, 4]
        seg_a.unlink()  # a checkpoint pruned the drained prefix
        assert [r.lsn for r in feed.poll()] == [5, 6, 7, 8]

    def test_poll_after_pruned_position_raises_typed_error(self, tmp_path):
        # Regression: pruning the log past a feed's position used to
        # make poll() return [] forever while lag() kept growing — the
        # records were silently lost.  It must raise a typed error so
        # the consumer re-bootstraps from a checkpoint.
        from repro.durability import WalTruncatedError

        seg_a = self._write_segment(tmp_path, [1, 2, 3, 4])
        self._write_segment(tmp_path, [5, 6, 7, 8])
        feed = WalFeed(tmp_path)
        assert [r.lsn for r in feed.poll(max_records=2)] == [1, 2]
        seg_a.unlink()  # records 3 and 4 will never reappear
        with pytest.raises(WalTruncatedError) as excinfo:
            feed.poll()
        assert excinfo.value.code == "wal_truncated"
        assert excinfo.value.requested == 3
        assert excinfo.value.first_available == 5

    def test_checkpoint_prune_past_live_feed_raises(self, tmp_path):
        # Same contract through the real checkpoint path: insert-heavy
        # records force rotation, checkpoint_now prunes everything but
        # the tail, and a feed stuck in the pruned prefix must fail
        # loudly instead of silently skipping records.
        from repro.durability import WalTruncatedError

        index, _ = _build()
        durable = create(index, tmp_path, sync=False, segment_bytes=256)
        feed = WalFeed(tmp_path / WAL_SUBDIR)
        for i in range(8):
            durable.insert(_batch(2, seed=i))
        assert len(list_segments(tmp_path / WAL_SUBDIR)) > 2
        assert [r.lsn for r in feed.poll(max_records=1)] == [1]
        checkpoint_now(durable, tmp_path)  # prunes the acked prefix
        durable.insert(_batch(1, seed=99))
        with pytest.raises(WalTruncatedError) as excinfo:
            feed.poll()
        assert excinfo.value.requested == 2
        assert excinfo.value.first_available > 2
        durable.close()


class TestLiveServicePropagation:
    """WAL-fed fleet must answer bit-identically to the writer's index."""

    @staticmethod
    def _assert_identical(flat, sharded):
        np.testing.assert_array_equal(flat.ids, sharded.ids)
        np.testing.assert_array_equal(flat.distances, sharded.distances)
        assert flat.io.total == sharded.io.total
        assert flat.rounds == sharded.rounds
        assert flat.termination == sharded.termination

    def test_fleet_tracks_wal_bit_identically(self, tmp_path):
        from repro.serve import ShardedSearchService

        writer_index, data = _build()
        writer = create(writer_index, tmp_path, sync=False)
        served_index, _ = _build()  # deterministic twin of the snapshot
        feed = WalFeed(tmp_path / WAL_SUBDIR)
        queries = [data[5], data[100], np.full(10, 77.0)]
        with ShardedSearchService(served_index, n_shards=2) as svc:
            for q in queries:
                self._assert_identical(
                    writer.knn(q, 5, p=1.0), svc.search(q, 5, p=1.0)
                )
            # Three update records: insert, remove, insert.
            writer.insert(_batch(7, seed=80))
            writer.remove([4, 100])
            fresh = _batch(4, seed=81)
            writer.insert(fresh)
            assert svc.ingest(feed.poll()) == 3
            assert svc.acked_lsn == 3 and svc.epoch == 3
            for q in queries + [fresh[0], fresh[3]]:
                self._assert_identical(
                    writer.knn(q, 5, p=1.0), svc.search(q, 5, p=1.0)
                )
            wal_health = svc.health()["wal"]
            assert wal_health["acked_lsn"] == 3
            assert wal_health["extra_points"] == 11
            # Ingesting the same records again is a no-op (idempotent).
            assert svc.ingest(feed.poll()) == 0
        writer.close()

    def test_gap_in_update_stream_rejected(self, tmp_path):
        from repro.durability.wal import WalRecord
        from repro.serve import ShardedSearchService

        index, _data = _build()
        with ShardedSearchService(index, n_shards=2) as svc:
            record = WalRecord(lsn=5, op="remove", ids=np.array([1]))
            with pytest.raises(ReproError, match="update gap"):
                svc.ingest([record])

    def test_gap_error_is_typed_with_both_lsns(self, tmp_path):
        # The gap error must carry the expected *and* received LSN so a
        # replication follower can surface it as a typed wire error.
        from repro.durability.wal import WalRecord
        from repro.errors import WalGapError
        from repro.serve import ShardedSearchService

        index, _data = _build()
        with ShardedSearchService(index, n_shards=2) as svc:
            record = WalRecord(lsn=7, op="remove", ids=np.array([1]))
            with pytest.raises(WalGapError) as excinfo:
                svc.ingest([record])
            assert excinfo.value.code == "wal_gap"
            assert excinfo.value.expected == 1
            assert excinfo.value.received == 7
            assert "expected LSN 1" in str(excinfo.value)
            assert "received 7" in str(excinfo.value)

    def test_respawned_workers_catch_up(self, tmp_path):
        from repro.serve import ShardedSearchService

        writer_index, data = _build()
        writer = create(writer_index, tmp_path, sync=False)
        served_index, _ = _build()
        feed = WalFeed(tmp_path / WAL_SUBDIR)
        with ShardedSearchService(served_index, n_shards=2) as svc:
            writer.insert(_batch(6, seed=90))
            writer.remove([8])
            svc.ingest(feed.poll())
            # Kill a worker after it applied updates: the respawn must
            # replay the update log before serving again.
            svc._crash_worker(0)
            writer.insert(_batch(3, seed=91))
            svc.ingest(feed.poll())
            assert svc.restarts >= 1
            for q in (data[8], data[30], np.full(10, 12.0)):
                self._assert_identical(
                    writer.knn(q, 5, p=1.0), svc.search(q, 5, p=1.0)
                )
            # Worker dying again *mid-catch-up* restarts the repair.
            svc._test_kill_during_catchup = 1
            svc._crash_worker(1)
            restarts_before = svc.restarts
            for q in (data[8], np.full(10, 12.0)):
                self._assert_identical(
                    writer.knn(q, 5, p=1.0), svc.search(q, 5, p=1.0)
                )
            assert svc.restarts > restarts_before
        writer.close()
