"""Empirical validation of the paper's theory (Theorem 1, Lemmas 2-3).

These tests measure actual hash collision rates against the bounds the
parameter engine derives, closing the loop between the math of Section 3
and the behaviour of the implementation.
"""

import numpy as np
import pytest

from repro.core.hashing import StableHashBank
from repro.core.params import ParameterEngine
from repro.metrics.lp import lp_distance
from repro.metrics.sampling import sample_lp_ball, sample_lp_sphere


@pytest.fixture(scope="module")
def engine() -> ParameterEngine:
    return ParameterEngine(
        16, c=3.0, epsilon=0.05, beta=0.05, mc_samples=40_000, mc_buckets=80, seed=3
    )


def _collision_rate(bank, level, origin_points, other_points):
    """Fraction of hash functions under which each pair collides, using
    query-centric windows at ``level``."""
    h_origin = bank.hash_points(origin_points)
    h_other = bank.hash_points(other_points)
    rates = []
    for col in range(origin_points.shape[0]):
        lo = h_origin[:, col]
        hi = h_other[:, col]
        half = int(np.floor(level / 2.0))
        rates.append(np.mean(np.abs(lo - hi) <= half))
    return np.asarray(rates)


class TestTheorem1:
    """An (r, cr, p1, p2)-sensitive l1 hash is (delta, c*delta, p1', p2')-
    sensitive in the lp space at the engine-chosen radius."""

    # The integer bucket windows only approximate the theoretical rehash
    # width r0 * r_hat * delta once the window spans many base buckets, so
    # the tests pick delta with level = r_hat * delta ~ 65 (Lemma 3 makes
    # p1'/p2' scale-free, so any delta probes the same bounds).
    _LEVEL = 65.0

    def test_near_points_collide_at_least_p1_prime(self, engine):
        d, p = 16, 0.7
        params = engine.metric_params(p)
        delta = self._LEVEL / params.r_hat
        rng = np.random.default_rng(10)
        bank = StableHashBank(d, 3000, r0=1.0, c=3.0, t_max=10.0, seed=11)
        # Pairs at lp distance exactly delta: centre q plus a scaled point
        # of the unit lp sphere.
        n_pairs = 60
        centres = rng.uniform(0.0, 10.0, size=(n_pairs, d))
        others = centres + sample_lp_sphere(n_pairs, d, p, seed=12) * delta
        rates = _collision_rate(bank, self._LEVEL, centres, others)
        # Theorem 1 condition (1) bounds the *expected* collision rate from
        # below by p1'; allow Monte-Carlo slack.
        assert rates.mean() >= params.p1_prime - 0.05

    def test_far_points_collide_at_most_p2_prime(self, engine):
        d, p = 16, 0.7
        params = engine.metric_params(p)
        delta = self._LEVEL / params.r_hat
        rng = np.random.default_rng(20)
        bank = StableHashBank(d, 3000, r0=1.0, c=3.0, t_max=10.0, seed=21)
        n_pairs = 60
        centres = rng.uniform(0.0, 10.0, size=(n_pairs, d))
        # Points just beyond c*delta: scale the unit sphere accordingly.
        offsets = sample_lp_sphere(n_pairs, d, p, seed=22) * (3.0 * 1.05 * delta)
        others = centres + offsets
        rates = _collision_rate(bank, self._LEVEL, centres, others)
        assert rates.mean() <= params.p2_prime + 0.05

    def test_gap_separates_near_from_far(self, engine):
        # The operational meaning of p1' > p2': near pairs collide
        # noticeably more often than far pairs under the same windows.
        d, p = 16, 0.6
        params = engine.metric_params(p)
        delta = self._LEVEL / params.r_hat
        rng = np.random.default_rng(30)
        bank = StableHashBank(d, 2000, r0=1.0, c=3.0, t_max=10.0, seed=31)
        n_pairs = 50
        centres = rng.uniform(0.0, 10.0, size=(n_pairs, d))
        near = centres + sample_lp_sphere(n_pairs, d, p, seed=32) * delta
        far = centres + sample_lp_sphere(n_pairs, d, p, seed=33) * (3.5 * delta)
        near_rates = _collision_rate(bank, self._LEVEL, centres, near)
        far_rates = _collision_rate(bank, self._LEVEL, centres, far)
        assert near_rates.mean() > far_rates.mean()


class TestMonteCarloConditional:
    """Pr(e4 | e2) from Algorithm 2 matches a direct simulation."""

    def test_prob_matches_fresh_sample(self, engine):
        p = 0.6
        curve = engine.curve(p)
        table = engine._table(p)
        points = sample_lp_ball(30_000, 16, p, seed=99)
        l1 = np.abs(points).sum(axis=1)
        for idx in (10, 40, 70):
            r = float(curve.radii[idx])
            direct = float((l1 <= r).mean())
            assert float(table.prob_at(r)) == pytest.approx(direct, abs=0.02)


class TestPropertyP1:
    """C2LSH-style property P1: a true neighbour reaches the collision
    threshold with probability >= 1 - epsilon."""

    def test_collision_count_of_true_neighbour(self):
        # Build the real index machinery and check that a point at lp
        # distance delta collides > theta times in nearly every trial.
        from repro import LazyLSH, LazyLSHConfig

        d, p = 16, 0.7
        cfg = LazyLSHConfig(
            c=3.0,
            p_min=p,
            epsilon=0.05,
            beta=0.05,
            seed=41,
            mc_samples=20_000,
            mc_buckets=80,
        )
        rng = np.random.default_rng(42)
        # Plant near neighbours at lp distance ~delta around query points.
        n_background = 400
        data = rng.uniform(0.0, 200.0, size=(n_background, d))
        queries = rng.uniform(50.0, 150.0, size=(20, d))
        delta = 5.0
        planted = queries + sample_lp_sphere(20, d, p, seed=43) * delta * 0.9
        full = np.vstack([data, planted])
        index = LazyLSH(cfg).build(full)
        params = index.metric_params(p)
        found = 0
        for qi, query in enumerate(queries):
            result = index.knn(query, 1, p=p)
            planted_id = n_background + qi
            planted_dist = float(lp_distance(full[planted_id], query, p))
            # The returned neighbour must be a c-approximation of the
            # planted point (which is itself at least the true NN's cost).
            if result.distances[0] <= cfg.c * planted_dist:
                found += 1
        # P1 holds with probability >= 1 - epsilon per query; allow a
        # couple of failures across 20 queries.
        assert found >= 17
