"""Unit tests for repro.metrics.stable: p-stable and generalized gamma."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.metrics.stable import (
    GeneralizedGamma,
    sample_cauchy,
    sample_gaussian,
    sample_p_stable,
)


class TestBasicSamplers:
    def test_shapes(self):
        assert sample_cauchy(10, seed=1).shape == (10,)
        assert sample_gaussian((3, 4), seed=1).shape == (3, 4)
        assert sample_p_stable(0.5, (2, 5), seed=1).shape == (2, 5)

    def test_determinism(self):
        a = sample_p_stable(0.7, 100, seed=42)
        b = sample_p_stable(0.7, 100, seed=42)
        np.testing.assert_array_equal(a, b)

    def test_gaussian_moments(self):
        x = sample_gaussian(200_000, seed=3)
        assert abs(x.mean()) < 0.02
        assert x.std() == pytest.approx(1.0, abs=0.02)

    def test_cauchy_median_and_quartiles(self):
        # The Cauchy has no mean; check median 0 and quartiles +-1.
        x = sample_cauchy(200_000, seed=3)
        assert abs(np.median(x)) < 0.02
        assert np.quantile(x, 0.75) == pytest.approx(1.0, abs=0.03)
        assert np.quantile(x, 0.25) == pytest.approx(-1.0, abs=0.03)

    def test_p_stable_rejects_bad_p(self):
        with pytest.raises(InvalidParameterError):
            sample_p_stable(0.0, 10)
        with pytest.raises(InvalidParameterError):
            sample_p_stable(2.5, 10)


class TestStabilityProperty:
    """Definition 4: sum(v_i X_i) ~ ||v||_p X for i.i.d. p-stable X_i."""

    @pytest.mark.parametrize("p", [0.5, 1.0, 1.5, 2.0])
    def test_linear_combination_distribution(self, p):
        rng = np.random.default_rng(7)
        v = np.array([1.0, 2.0, 0.5, 3.0])
        scale = float(np.power(np.power(np.abs(v), p).sum(), 1.0 / p))
        n = 60_000
        xs = sample_p_stable(p, (n, v.size), seed=rng)
        combo = xs @ v
        reference = scale * sample_p_stable(p, n, seed=rng)
        # Compare distributions via quantiles of the absolute values
        # (heavy tails make moment comparisons useless for p < 2).
        for q in (0.25, 0.5, 0.75):
            a = np.quantile(np.abs(combo), q)
            b = np.quantile(np.abs(reference), q)
            assert a == pytest.approx(b, rel=0.08)

    def test_cms_matches_closed_form_cauchy(self):
        # Force the CMS code path at p very close to 1 and compare
        # against the closed-form Cauchy sampler.
        x_cms = sample_p_stable(0.999, 150_000, seed=5)
        x_exact = sample_cauchy(150_000, seed=6)
        for q in (0.25, 0.5, 0.75, 0.9):
            assert np.quantile(x_cms, q) == pytest.approx(
                np.quantile(x_exact, q), abs=0.08
            )


class TestGeneralizedGamma:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            GeneralizedGamma(alpha=0.0, lam=1.0, upsilon=1.0)
        with pytest.raises(InvalidParameterError):
            GeneralizedGamma(alpha=1.0, lam=-1.0, upsilon=1.0)

    def test_pdf_integrates_to_one(self):
        gg = GeneralizedGamma(alpha=1.0, lam=1.0, upsilon=0.5)
        xs = np.linspace(0.0, 200.0, 400_001)
        total = np.trapezoid(gg.pdf(xs), xs)
        assert total == pytest.approx(1.0, abs=1e-3)

    def test_pdf_zero_for_negative(self):
        gg = GeneralizedGamma(alpha=1.0, lam=2.0, upsilon=1.0)
        assert gg.pdf(np.array([-1.0]))[0] == 0.0

    def test_reduces_to_exponential(self):
        # G(1, 1, 1) is the Exp(1) distribution.
        gg = GeneralizedGamma(alpha=1.0, lam=1.0, upsilon=1.0)
        xs = np.array([0.0, 0.5, 1.0, 2.0])
        np.testing.assert_allclose(gg.pdf(xs), np.exp(-xs))

    def test_sample_mean_matches_analytic(self):
        gg = GeneralizedGamma(alpha=1.0, lam=1.0, upsilon=0.5)
        samples = gg.sample(200_000, seed=9)
        assert samples.mean() == pytest.approx(gg.mean(), rel=0.05)

    def test_samples_non_negative(self):
        gg = GeneralizedGamma(alpha=2.0, lam=1.5, upsilon=0.8)
        assert (gg.sample(10_000, seed=1) >= 0).all()

    def test_sample_histogram_matches_pdf(self):
        gg = GeneralizedGamma(alpha=1.0, lam=1.0, upsilon=0.7)
        samples = gg.sample(300_000, seed=2)
        hist, edges = np.histogram(samples, bins=50, range=(0.0, 10.0), density=True)
        centres = (edges[:-1] + edges[1:]) / 2.0
        expected = gg.pdf(centres)
        mask = expected > 0.01
        np.testing.assert_allclose(hist[mask], expected[mask], rtol=0.15)
