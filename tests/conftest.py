"""Shared fixtures for the test suite.

Expensive artefacts (Monte-Carlo tables, built indexes) are session-scoped
and deliberately small: 1,000-ish points in 16 dimensions keep every LSH
query under a second while still exercising multi-round rehashing.
"""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.logconfig import ROOT_LOGGER_NAME

from repro import LazyLSH, LazyLSHConfig
from repro.datasets import make_synthetic, sample_queries
from repro.datasets.queries import QuerySplit

#: Monte-Carlo resolution used throughout the tests (fast but stable).
MC_SAMPLES = 20_000
MC_BUCKETS = 100


@pytest.fixture(autouse=True)
def _isolate_repro_logging():
    """Restore the ``repro`` logger after every test.

    CLI tests run ``repro serve`` in-process, which calls
    ``configure_logging`` and flips the namespace root to
    ``propagate=False`` with its own stderr handler — state that would
    otherwise leak into later tests and starve ``caplog`` (records stop
    propagating to the root logger pytest listens on).
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    handlers = list(root.handlers)
    level, propagate = root.level, root.propagate
    yield
    for handler in list(root.handlers):
        if handler not in handlers:
            root.removeHandler(handler)
            handler.close()
    root.handlers = handlers
    root.setLevel(level)
    root.propagate = propagate


@pytest.fixture(scope="session")
def small_config() -> LazyLSHConfig:
    """The LazyLSH configuration shared by most index tests."""
    return LazyLSHConfig(
        c=3.0,
        p_min=0.5,
        seed=11,
        mc_samples=MC_SAMPLES,
        mc_buckets=MC_BUCKETS,
    )


@pytest.fixture(scope="session")
def small_split() -> QuerySplit:
    """1,200 synthetic points (d=16) with 4 held-out queries."""
    data = make_synthetic(1200, 16, value_range=(0, 500), seed=5)
    return sample_queries(data, n_queries=4, seed=6)


@pytest.fixture(scope="session")
def built_index(small_config: LazyLSHConfig, small_split: QuerySplit) -> LazyLSH:
    """A LazyLSH index built over the small synthetic dataset."""
    return LazyLSH(small_config).build(small_split.data)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Session-wide RNG for tests that need ad-hoc randomness."""
    return np.random.default_rng(1234)
