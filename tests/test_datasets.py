"""Tests for the dataset substrate: synthetic, simulated, labelled,
query sampling and ground truth."""

import numpy as np
import pytest

from repro.datasets import (
    LABELED_DATASET_NAMES,
    SIMULATED_DATASET_NAMES,
    exact_knn,
    exact_knn_multi,
    inria_like,
    load_simulated,
    make_labeled_dataset,
    make_synthetic,
    mnist_like,
    sample_queries,
)
from repro.datasets.simulated import dataset_spec
from repro.errors import DatasetError
from repro.metrics.lp import lp_distance


class TestSynthetic:
    def test_shape_and_range(self):
        data = make_synthetic(100, 7, value_range=(0, 10), seed=1)
        assert data.shape == (100, 7)
        assert data.min() >= 0 and data.max() <= 10

    def test_integer_valued(self):
        data = make_synthetic(50, 3, seed=2)
        np.testing.assert_array_equal(data, np.round(data))

    def test_deterministic(self):
        np.testing.assert_array_equal(
            make_synthetic(10, 4, seed=9), make_synthetic(10, 4, seed=9)
        )

    def test_uniform_coverage(self):
        data = make_synthetic(20_000, 2, value_range=(0, 9), seed=3)
        counts = np.bincount(data.astype(int).ravel(), minlength=10)
        # Each of the 10 values should hold ~10% of the mass.
        assert (np.abs(counts / counts.sum() - 0.1) < 0.01).all()

    def test_validation(self):
        with pytest.raises(DatasetError):
            make_synthetic(0, 4)
        with pytest.raises(DatasetError):
            make_synthetic(4, 0)
        with pytest.raises(DatasetError):
            make_synthetic(4, 4, value_range=(10, 0))


class TestSimulated:
    @pytest.mark.parametrize("name", SIMULATED_DATASET_NAMES)
    def test_spec_shapes(self, name):
        spec = dataset_spec(name)
        data = load_simulated(name, n=200, seed=1)
        assert data.shape == (200, spec.d)
        lo, hi = spec.value_range
        assert data.min() >= lo and data.max() <= hi

    def test_table4_dimensionalities(self):
        assert dataset_spec("inria").d == 128
        assert dataset_spec("sun").d == 512
        assert dataset_spec("labelme").d == 512
        assert dataset_spec("mnist").d == 784

    def test_mnist_sparsity(self):
        data = mnist_like(n=300, seed=2)
        assert (data == 0).mean() > 0.5

    def test_clustered_not_uniform(self):
        # Clustered data: NN distances are much smaller than for uniform
        # data spanning the same range.
        data = inria_like(n=500, seed=3)
        rng = np.random.default_rng(4)
        uniform = rng.integers(0, 256, size=(500, 128)).astype(float)

        def median_nn(points):
            nn = []
            for i in range(60):
                dists = lp_distance(points, points[i], 2.0)
                dists[i] = np.inf
                nn.append(dists.min())
            return np.median(nn)

        assert median_nn(data) < median_nn(uniform)

    def test_deterministic(self):
        np.testing.assert_array_equal(
            load_simulated("sun", n=50, seed=7), load_simulated("sun", n=50, seed=7)
        )

    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            load_simulated("imagenet")
        with pytest.raises(DatasetError):
            dataset_spec("imagenet")

    def test_bad_cardinality(self):
        with pytest.raises(DatasetError):
            load_simulated("inria", n=0)


class TestLabeled:
    @pytest.mark.parametrize("name", LABELED_DATASET_NAMES)
    def test_all_datasets_generate(self, name):
        ds = make_labeled_dataset(name, seed=1)
        assert ds.points.shape == (ds.n, ds.d)
        assert ds.labels.shape == (ds.n,)
        assert ds.n_classes >= 2
        assert ds.paper_shape[0] >= ds.n  # never larger than the original

    def test_split(self):
        ds = make_labeled_dataset("bcw", seed=1)
        x_tr, y_tr, x_te, y_te = ds.split(100, seed=2)
        assert x_te.shape[0] == y_te.shape[0] == 100
        assert x_tr.shape[0] + 100 == ds.n

    def test_split_validation(self):
        ds = make_labeled_dataset("bcw", seed=1)
        with pytest.raises(DatasetError):
            ds.split(ds.n)

    def test_classes_balanced(self):
        ds = make_labeled_dataset("svs", seed=1)
        counts = np.bincount(ds.labels)
        assert counts.min() >= counts.max() - ds.n_classes

    def test_classes_separable_above_chance(self):
        # 1NN accuracy must beat random guessing by a wide margin on the
        # easy datasets.
        from repro.eval import classification_accuracy

        ds = make_labeled_dataset("gisette", seed=1)
        x_tr, y_tr, x_te, y_te = ds.split(80, seed=3)
        acc = classification_accuracy(x_tr, y_tr, x_te, y_te, k=1, p=1.0)
        assert acc > 0.8

    def test_sun_is_hard(self):
        # Table 1: the 100-class Sun stand-in stays near-chance (~10%).
        from repro.eval import classification_accuracy

        ds = make_labeled_dataset("sun", seed=7)
        x_tr, y_tr, x_te, y_te = ds.split(80, seed=3)
        acc = classification_accuracy(x_tr, y_tr, x_te, y_te, k=1, p=1.0)
        assert acc < 0.3

    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            make_labeled_dataset("cifar")


class TestSampleQueries:
    def test_removal(self):
        data = make_synthetic(100, 5, seed=1)
        split = sample_queries(data, 10, seed=2)
        assert split.data.shape == (90, 5)
        assert split.queries.shape == (10, 5)
        assert split.num_queries == 10

    def test_no_removal(self):
        data = make_synthetic(100, 5, seed=1)
        split = sample_queries(data, 10, remove=False, seed=2)
        assert split.data.shape == (100, 5)

    def test_queries_come_from_data(self):
        data = make_synthetic(100, 5, seed=1)
        split = sample_queries(data, 10, seed=2)
        np.testing.assert_array_equal(split.queries, data[split.query_indices])

    def test_removed_queries_absent(self):
        data = make_synthetic(50, 4, seed=3)
        split = sample_queries(data, 5, seed=4)
        for q in split.queries:
            assert not (split.data == q).all(axis=1).any()

    def test_validation(self):
        data = make_synthetic(10, 2, seed=1)
        with pytest.raises(DatasetError):
            sample_queries(data, 10, seed=1)
        with pytest.raises(DatasetError):
            sample_queries(data, 0, seed=1)


class TestExactKnn:
    def test_matches_bruteforce(self):
        data = make_synthetic(200, 6, seed=5)
        queries = make_synthetic(3, 6, seed=6)
        ids, dists = exact_knn(data, queries, 4, 0.5)
        assert ids.shape == dists.shape == (3, 4)
        for qi in range(3):
            all_d = lp_distance(data, queries[qi], 0.5)
            np.testing.assert_allclose(dists[qi], np.sort(all_d)[:4])

    def test_sorted_per_query(self):
        data = make_synthetic(100, 4, seed=7)
        _, dists = exact_knn(data, data[:5], 10, 1.0)
        assert (np.diff(dists, axis=1) >= 0).all()

    def test_single_query_vector(self):
        data = make_synthetic(50, 4, seed=8)
        ids, dists = exact_knn(data, data[0], 1, 1.0)
        assert ids.shape == (1, 1)
        assert ids[0, 0] == 0

    def test_multi_metric(self):
        data = make_synthetic(100, 4, seed=9)
        truth = exact_knn_multi(data, data[:2], 3, [0.5, 1.0])
        assert set(truth) == {0.5, 1.0}
        for ids, dists in truth.values():
            assert ids.shape == (2, 3)

    def test_validation(self):
        data = make_synthetic(10, 2, seed=1)
        with pytest.raises(DatasetError):
            exact_knn(data, data[0], 0, 1.0)
        with pytest.raises(DatasetError):
            exact_knn(data, data[0], 11, 1.0)
        with pytest.raises(DatasetError):
            exact_knn_multi(data, data[0], 1, [])
