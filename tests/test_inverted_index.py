"""Unit tests for repro.storage.inverted_index."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.storage.inverted_index import InvertedListStore
from repro.storage.io_stats import IOStats
from repro.storage.pages import PageLayout


@pytest.fixture
def tiny_store() -> InvertedListStore:
    # Two hash functions over six points; layout of 4 entries per page so
    # page charging is easy to reason about.
    hash_values = np.array(
        [
            [5, 1, 9, 1, 7, 3],
            [0, 0, 0, 2, 2, 4],
        ],
        dtype=np.int64,
    )
    return InvertedListStore(hash_values, PageLayout(page_size=32, entry_size=8))


class TestConstruction:
    def test_shape_validation(self):
        with pytest.raises(InvalidParameterError):
            InvertedListStore(np.zeros(5, dtype=np.int64))

    def test_dtype_validation(self):
        with pytest.raises(InvalidParameterError):
            InvertedListStore(np.zeros((2, 3), dtype=np.float64))

    def test_counts(self, tiny_store):
        assert tiny_store.num_functions == 2
        assert tiny_store.num_points == 6

    def test_size_accounting(self, tiny_store):
        # 6 entries of 8 bytes = 48 bytes -> 2 pages of 32 bytes, per
        # function; 2 functions -> 128 bytes total.
        assert tiny_store.size_bytes() == 128
        assert tiny_store.size_mb() == pytest.approx(128 / 1024.0 / 1024.0)


class TestReadWindow:
    def test_exact_bucket(self, tiny_store):
        ids = tiny_store.read_window(0, 1, 1)
        assert sorted(ids.tolist()) == [1, 3]

    def test_inclusive_range(self, tiny_store):
        ids = tiny_store.read_window(0, 3, 7)
        assert sorted(ids.tolist()) == [0, 4, 5]

    def test_empty_window(self, tiny_store):
        assert tiny_store.read_window(0, 100, 200).size == 0

    def test_inverted_bounds_return_empty(self, tiny_store):
        assert tiny_store.read_window(0, 5, 4).size == 0

    def test_sequential_io_charged_per_page(self, tiny_store):
        stats = IOStats()
        # Function 0 sorted values: [1,1,3,5,7,9]; window [1,5] covers
        # entries 0..3 -> exactly the first page (4 entries/page).
        tiny_store.read_window(0, 1, 5, stats)
        assert stats.sequential == 1
        stats.reset()
        # Window [1,9] covers entries 0..5 -> 2 pages.
        tiny_store.read_window(0, 1, 9, stats)
        assert stats.sequential == 2

    def test_empty_window_costs_nothing(self, tiny_store):
        stats = IOStats()
        tiny_store.read_window(0, 100, 200, stats)
        assert stats.total == 0

    def test_function_index_validated(self, tiny_store):
        with pytest.raises(InvalidParameterError):
            tiny_store.read_window(2, 0, 1)
        with pytest.raises(InvalidParameterError):
            tiny_store.read_window(-1, 0, 1)


class TestReadRing:
    def test_ring_excludes_inner(self, tiny_store):
        # Window [1,9] minus inner [3,7] -> hash values 1,1 and 9.
        ids = tiny_store.read_ring(0, 1, 9, 3, 7)
        assert sorted(ids.tolist()) == [1, 2, 3]

    def test_ring_with_empty_inner_degenerates(self, tiny_store):
        ids_ring = tiny_store.read_ring(0, 1, 9, 5, 4)
        ids_win = tiny_store.read_window(0, 1, 9)
        assert sorted(ids_ring.tolist()) == sorted(ids_win.tolist())

    def test_non_nested_inner_rejected(self, tiny_store):
        with pytest.raises(InvalidParameterError):
            tiny_store.read_ring(0, 3, 7, 1, 9)

    def test_ring_plus_inner_equals_window(self, tiny_store):
        inner = tiny_store.read_window(1, 0, 2)
        ring = tiny_store.read_ring(1, 0, 4, 0, 2)
        window = tiny_store.read_window(1, 0, 4)
        assert sorted(inner.tolist() + ring.tolist()) == sorted(window.tolist())

    def test_ring_charges_both_side_runs(self, tiny_store):
        stats = IOStats()
        # Function 0: entries [1,1,3,5,7,9].  Ring [1,9] \\ [3,7] reads
        # entries {0,1} (page 0) and {5} (page 1) -> 2 sequential I/Os.
        tiny_store.read_ring(0, 1, 9, 3, 7, stats)
        assert stats.sequential == 2


class TestSeenPages:
    def test_pages_charged_once(self, tiny_store):
        stats = IOStats()
        seen: set = set()
        tiny_store.read_window(0, 1, 5, stats, seen)
        assert stats.sequential == 1
        tiny_store.read_window(0, 1, 5, stats, seen)
        assert stats.sequential == 1  # second read hits the cache
        tiny_store.read_window(0, 1, 9, stats, seen)
        assert stats.sequential == 2  # only the new page is charged

    def test_seen_pages_are_per_function(self, tiny_store):
        stats = IOStats()
        seen: set = set()
        tiny_store.read_window(0, 1, 5, stats, seen)
        tiny_store.read_window(1, 0, 4, stats, seen)
        # Function 1's pages are distinct cache keys.
        assert stats.sequential > 1


class TestWindowPageCost:
    def test_matches_actual_charge(self, tiny_store):
        for lo, hi in [(1, 5), (1, 9), (100, 200), (3, 3)]:
            stats = IOStats()
            tiny_store.read_window(0, lo, hi, stats)
            assert tiny_store.window_page_cost(0, lo, hi) == stats.sequential


class TestBucketOf:
    def test_roundtrip(self, tiny_store):
        assert tiny_store.bucket_of(0, 2) == 9
        assert tiny_store.bucket_of(1, 5) == 4


class TestLargeStore:
    def test_window_matches_bruteforce(self, rng):
        hash_values = rng.integers(-50, 50, size=(3, 400)).astype(np.int64)
        store = InvertedListStore(hash_values)
        for func in range(3):
            for lo, hi in [(-10, 10), (0, 0), (-50, 49), (20, 45)]:
                got = sorted(store.read_window(func, lo, hi).tolist())
                want = sorted(
                    np.flatnonzero(
                        (hash_values[func] >= lo) & (hash_values[func] <= hi)
                    ).tolist()
                )
                assert got == want
