"""Unit tests for repro.storage.inverted_index."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.storage.inverted_index import InvertedListStore
from repro.storage.io_stats import IOStats
from repro.storage.pages import PageLayout


@pytest.fixture
def tiny_store() -> InvertedListStore:
    # Two hash functions over six points; layout of 4 entries per page so
    # page charging is easy to reason about.
    hash_values = np.array(
        [
            [5, 1, 9, 1, 7, 3],
            [0, 0, 0, 2, 2, 4],
        ],
        dtype=np.int64,
    )
    return InvertedListStore(hash_values, PageLayout(page_size=32, entry_size=8))


class TestConstruction:
    def test_shape_validation(self):
        with pytest.raises(InvalidParameterError):
            InvertedListStore(np.zeros(5, dtype=np.int64))

    def test_dtype_validation(self):
        with pytest.raises(InvalidParameterError):
            InvertedListStore(np.zeros((2, 3), dtype=np.float64))

    def test_counts(self, tiny_store):
        assert tiny_store.num_functions == 2
        assert tiny_store.num_points == 6

    def test_size_accounting(self, tiny_store):
        # 6 entries of 8 bytes = 48 bytes -> 2 pages of 32 bytes, per
        # function; 2 functions -> 128 bytes total.
        assert tiny_store.size_bytes() == 128
        assert tiny_store.size_mb() == pytest.approx(128 / 1024.0 / 1024.0)


class TestReadWindow:
    def test_exact_bucket(self, tiny_store):
        ids = tiny_store.read_window(0, 1, 1)
        assert sorted(ids.tolist()) == [1, 3]

    def test_inclusive_range(self, tiny_store):
        ids = tiny_store.read_window(0, 3, 7)
        assert sorted(ids.tolist()) == [0, 4, 5]

    def test_empty_window(self, tiny_store):
        assert tiny_store.read_window(0, 100, 200).size == 0

    def test_inverted_bounds_return_empty(self, tiny_store):
        assert tiny_store.read_window(0, 5, 4).size == 0

    def test_sequential_io_charged_per_page(self, tiny_store):
        stats = IOStats()
        # Function 0 sorted values: [1,1,3,5,7,9]; window [1,5] covers
        # entries 0..3 -> exactly the first page (4 entries/page).
        tiny_store.read_window(0, 1, 5, stats)
        assert stats.sequential == 1
        stats.reset()
        # Window [1,9] covers entries 0..5 -> 2 pages.
        tiny_store.read_window(0, 1, 9, stats)
        assert stats.sequential == 2

    def test_empty_window_costs_nothing(self, tiny_store):
        stats = IOStats()
        tiny_store.read_window(0, 100, 200, stats)
        assert stats.total == 0

    def test_function_index_validated(self, tiny_store):
        with pytest.raises(InvalidParameterError):
            tiny_store.read_window(2, 0, 1)
        with pytest.raises(InvalidParameterError):
            tiny_store.read_window(-1, 0, 1)


class TestReadRing:
    def test_ring_excludes_inner(self, tiny_store):
        # Window [1,9] minus inner [3,7] -> hash values 1,1 and 9.
        ids = tiny_store.read_ring(0, 1, 9, 3, 7)
        assert sorted(ids.tolist()) == [1, 2, 3]

    def test_ring_with_empty_inner_degenerates(self, tiny_store):
        ids_ring = tiny_store.read_ring(0, 1, 9, 5, 4)
        ids_win = tiny_store.read_window(0, 1, 9)
        assert sorted(ids_ring.tolist()) == sorted(ids_win.tolist())

    def test_non_nested_inner_rejected(self, tiny_store):
        with pytest.raises(InvalidParameterError):
            tiny_store.read_ring(0, 3, 7, 1, 9)

    def test_ring_plus_inner_equals_window(self, tiny_store):
        inner = tiny_store.read_window(1, 0, 2)
        ring = tiny_store.read_ring(1, 0, 4, 0, 2)
        window = tiny_store.read_window(1, 0, 4)
        assert sorted(inner.tolist() + ring.tolist()) == sorted(window.tolist())

    def test_ring_charges_both_side_runs(self, tiny_store):
        stats = IOStats()
        # Function 0: entries [1,1,3,5,7,9].  Ring [1,9] \\ [3,7] reads
        # entries {0,1} (page 0) and {5} (page 1) -> 2 sequential I/Os.
        tiny_store.read_ring(0, 1, 9, 3, 7, stats)
        assert stats.sequential == 2


class TestSeenPages:
    def test_pages_charged_once(self, tiny_store):
        stats = IOStats()
        seen: set = set()
        tiny_store.read_window(0, 1, 5, stats, seen)
        assert stats.sequential == 1
        tiny_store.read_window(0, 1, 5, stats, seen)
        assert stats.sequential == 1  # second read hits the cache
        tiny_store.read_window(0, 1, 9, stats, seen)
        assert stats.sequential == 2  # only the new page is charged

    def test_seen_pages_are_per_function(self, tiny_store):
        stats = IOStats()
        seen: set = set()
        tiny_store.read_window(0, 1, 5, stats, seen)
        tiny_store.read_window(1, 0, 4, stats, seen)
        # Function 1's pages are distinct cache keys.
        assert stats.sequential > 1


class TestWindowPageCost:
    def test_matches_actual_charge(self, tiny_store):
        for lo, hi in [(1, 5), (1, 9), (100, 200), (3, 3)]:
            stats = IOStats()
            tiny_store.read_window(0, lo, hi, stats)
            assert tiny_store.window_page_cost(0, lo, hi) == stats.sequential


class TestBucketOf:
    def test_roundtrip(self, tiny_store):
        assert tiny_store.bucket_of(0, 2) == 9
        assert tiny_store.bucket_of(1, 5) == 4


class TestShardView:
    def test_full_range_is_whole_store(self, tiny_store):
        values, ids, positions = tiny_store.shard_view(0, 6)
        assert np.array_equal(values, tiny_store._values)
        assert np.array_equal(ids, tiny_store._ids)
        assert np.array_equal(
            positions, np.tile(np.arange(6), (2, 1))
        )

    def test_subrun_preserves_run_order(self, rng):
        hash_values = rng.integers(-50, 50, size=(3, 40)).astype(np.int64)
        store = InvertedListStore(hash_values)
        for lo, hi in [(0, 40), (0, 7), (13, 14), (25, 40)]:
            values, ids, positions = store.shard_view(lo, hi)
            assert values.shape == ids.shape == positions.shape == (3, hi - lo)
            for func in range(3):
                # Entries come back in full-run order (positions strictly
                # ascending), with the owned id set exactly once each.
                assert np.all(np.diff(positions[func]) > 0)
                assert sorted(ids[func].tolist()) == list(range(lo, hi))
                assert np.array_equal(
                    values[func], store._values[func, positions[func]]
                )

    def test_bounds_validated(self, tiny_store):
        for lo, hi in [(-1, 3), (3, 3), (4, 2), (0, 7)]:
            with pytest.raises(InvalidParameterError):
                tiny_store.shard_view(lo, hi)


class _GatherObserver:
    def __init__(self):
        self.gathered = 0

    def on_gather(self, count: int) -> None:
        self.gathered += count


class TestGatherSegments:
    def test_known_segments(self, tiny_store):
        # Function 0 run ids (sorted by value [1,1,3,5,7,9]): [1,3,5,0,4,2].
        starts = np.array([0, 3], dtype=np.int64)
        lens = np.array([2, 1], dtype=np.int64)
        assert tiny_store.gather_segments(starts, lens).tolist() == [1, 3, 0]
        assert tiny_store.gather_segments32(starts, lens).tolist() == [1, 3, 0]

    def test_empty_segments_return_empty(self, tiny_store):
        starts = np.array([2, 5], dtype=np.int64)
        lens = np.zeros(2, dtype=np.int64)
        out = tiny_store.gather_segments(starts, lens)
        assert out.size == 0 and out.dtype == np.int64
        out32 = tiny_store.gather_segments32(starts, lens)
        assert out32.size == 0 and out32.dtype == np.int32

    def test_no_segments_at_all(self, tiny_store):
        empty = np.empty(0, dtype=np.int64)
        assert tiny_store.gather_segments(empty, empty).size == 0
        assert tiny_store.gather_segments32(empty, empty).size == 0

    def test_empty_gather_skips_observer(self, tiny_store):
        observer = _GatherObserver()
        tiny_store.observer = observer
        try:
            tiny_store.gather_segments(
                np.array([1], dtype=np.int64), np.zeros(1, dtype=np.int64)
            )
            assert observer.gathered == 0
            tiny_store.gather_segments(
                np.array([1], dtype=np.int64), np.ones(1, dtype=np.int64)
            )
            assert observer.gathered == 1
        finally:
            tiny_store.observer = None

    def test_gather32_matches_gather(self, rng):
        hash_values = rng.integers(-30, 30, size=(2, 100)).astype(np.int64)
        store = InvertedListStore(hash_values)
        starts = np.array([0, 100, 150], dtype=np.int64)
        lens = np.array([17, 0, 50], dtype=np.int64)
        wide = store.gather_segments(starts, lens)
        narrow = store.gather_segments32(starts, lens)
        assert narrow.dtype == np.int32
        assert np.array_equal(wide, narrow.astype(np.int64))

    def test_int32_overflow_guard(self, tiny_store, monkeypatch):
        monkeypatch.setattr(tiny_store, "_num_points", 2**31)
        with pytest.raises(InvalidParameterError, match="int32 id shadow"):
            tiny_store.gather_segments32(
                np.array([0], dtype=np.int64), np.ones(1, dtype=np.int64)
            )
        monkeypatch.undo()
        # The wide gather has no such limit and still works.
        assert tiny_store.gather_segments(
            np.array([0], dtype=np.int64), np.ones(1, dtype=np.int64)
        ).size == 1


class TestLargeStore:
    def test_window_matches_bruteforce(self, rng):
        hash_values = rng.integers(-50, 50, size=(3, 400)).astype(np.int64)
        store = InvertedListStore(hash_values)
        for func in range(3):
            for lo, hi in [(-10, 10), (0, 0), (-50, 49), (20, 45)]:
                got = sorted(store.read_window(func, lo, hi).tolist())
                want = sorted(
                    np.flatnonzero(
                        (hash_values[func] >= lo) & (hash_values[func] <= hi)
                    ).tolist()
                )
                assert got == want
