"""Kill -9 crash recovery: the durability guarantee end to end.

A child process ingests update batches through a fsync-on-commit
:class:`~repro.durability.wal.DurableIndex`, publishing the last
durably committed LSN through shared memory after every commit.  The
parent SIGKILLs it at a randomized point mid-ingest, recovers the home
directory, and asserts the recovery invariant:

* every record the child acked before dying survived (``last_lsn`` of
  the recovered log >= the published acked LSN), and
* the recovered index is bit-identical (data, tombstones, inverted
  lists, kNN answers) to a reference built by replaying exactly the
  surviving log prefix onto the initial checkpoint.

The kill lands at whatever record the timing produces for each seed —
including inside an append — so the torn-tail truncation path gets
exercised organically.
"""

import multiprocessing as mp
import os
import signal
import time

import numpy as np
import pytest

from repro import LazyLSH, LazyLSHConfig
from repro.datasets import make_synthetic
from repro.durability import create, recover
from repro.durability.checkpoint import (
    _reference_index_from,
    states_identical,
)

CFG = dict(c=3.0, p_min=0.7, seed=41, mc_samples=10_000, mc_buckets=60)


def _build(n=240, d=10, seed=40):
    data = make_synthetic(n, d, value_range=(0, 200), seed=seed)
    return LazyLSH(LazyLSHConfig(**CFG)).build(data), data


def _ingest_forever(home: str, acked) -> None:
    """Child: recover the home and commit batches until killed."""
    durable, _report = recover(home, sync=True)
    rng = np.random.default_rng(1000)
    i = 0
    while True:
        if i % 5 == 4 and durable.num_points > 4:
            victim = int(rng.integers(0, durable.num_rows))
            if durable.index._alive[victim]:
                durable.remove([victim])
            else:
                durable.insert(rng.uniform(0, 200, size=(1, 10)))
        else:
            durable.insert(rng.uniform(0, 200, size=(3, 10)))
        with acked.get_lock():
            acked.value = durable.last_lsn
        i += 1


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_sigkill_mid_ingest_recovers_acked_prefix(tmp_path, seed):
    index, data = _build()
    create(index, tmp_path, sync=True).close()

    ctx = mp.get_context("fork")
    acked = ctx.Value("q", 0)
    child = ctx.Process(
        target=_ingest_forever, args=(str(tmp_path), acked), daemon=True
    )
    child.start()
    try:
        # Let the child commit a randomized number of records, then
        # SIGKILL it mid-flight — no atexit, no flush, no cleanup.
        target = 3 + np.random.default_rng(seed).integers(0, 12)
        deadline = time.monotonic() + 60
        while acked.value < target:
            if not child.is_alive() or time.monotonic() > deadline:
                pytest.fail(
                    f"child stalled at LSN {acked.value} (target {target})"
                )
            time.sleep(0.002)
        os.kill(child.pid, signal.SIGKILL)
    finally:
        child.join(timeout=10)
    acked_lsn = acked.value
    assert acked_lsn >= target

    durable, report = recover(tmp_path, sync=False)
    try:
        # Durability: every acked record survived the SIGKILL.
        assert durable.last_lsn >= acked_lsn
        assert report["replayed_records"] == durable.last_lsn
        # Equivalence: recovered state == replaying the surviving
        # prefix onto the initial checkpoint.
        reference = _reference_index_from(tmp_path)
        assert states_identical(
            durable.index, reference, queries=data[:3], k=5
        )
        # And the recovered index keeps working.
        durable.insert(np.full((1, 10), 3.0))
        result = durable.knn(np.full(10, 3.0), 1, p=1.0)
        assert result.ids[0] == durable.num_rows - 1
    finally:
        durable.close()


def test_back_to_back_crashes_accumulate(tmp_path):
    """Crash, recover, ingest more, crash again: history stays intact."""
    index, data = _build()
    create(index, tmp_path, sync=True).close()
    ctx = mp.get_context("fork")
    seen_lsns = []
    for round_no in range(2):
        acked = ctx.Value("q", 0)
        child = ctx.Process(
            target=_ingest_forever, args=(str(tmp_path), acked), daemon=True
        )
        child.start()
        deadline = time.monotonic() + 60
        target = (seen_lsns[-1] + 4) if seen_lsns else 4
        while acked.value < target:
            if not child.is_alive() or time.monotonic() > deadline:
                pytest.fail("child stalled")
            time.sleep(0.002)
        os.kill(child.pid, signal.SIGKILL)
        child.join(timeout=10)
        seen_lsns.append(acked.value)
    durable, _report = recover(tmp_path, sync=False)
    try:
        assert durable.last_lsn >= seen_lsns[-1] > seen_lsns[0]
        assert states_identical(
            durable.index, _reference_index_from(tmp_path), queries=data[:2]
        )
    finally:
        durable.close()
