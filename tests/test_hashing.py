"""Unit tests for repro.core.hashing: hash banks and rehashing windows."""

import numpy as np
import pytest

from repro.core.hashing import (
    StableHashBank,
    original_window,
    query_centric_window,
)
from repro.errors import DimensionalityMismatchError, InvalidParameterError


class TestQueryCentricWindow:
    def test_level_one_is_single_bucket(self):
        assert query_centric_window(9, 1.0) == (9, 9)

    def test_level_three(self):
        assert query_centric_window(9, 3.0) == (8, 10)

    def test_level_nine(self):
        assert query_centric_window(9, 9.0) == (5, 13)

    def test_symmetry_around_query(self):
        for level in (1.0, 2.0, 5.0, 27.0):
            lo, hi = query_centric_window(100, level)
            assert 100 - lo == hi - 100

    def test_fractional_level_floors(self):
        assert query_centric_window(0, 2.9) == (-1, 1)

    def test_windows_nest(self):
        prev = query_centric_window(42, 3.0)
        cur = query_centric_window(42, 9.0)
        assert cur[0] <= prev[0] and prev[1] <= cur[1]

    def test_negative_level_rejected(self):
        with pytest.raises(InvalidParameterError):
            query_centric_window(0, -1.0)


class TestOriginalWindow:
    def test_figure8_example(self):
        # Figure 8: query in bucket 9.  H_3 groups [9, 11]; H_9 groups
        # [9, 17]; H_27 groups [0, 26].
        assert original_window(9, 3.0) == (9, 11)
        assert original_window(9, 9.0) == (9, 17)
        assert original_window(9, 27.0) == (0, 26)

    def test_window_contains_query(self):
        for hq in (-13, 0, 7, 100):
            for level in (1.0, 3.0, 9.0):
                lo, hi = original_window(hq, level)
                assert lo <= hq <= hi

    def test_width_equals_level(self):
        lo, hi = original_window(50, 9.0)
        assert hi - lo + 1 == 9

    def test_can_be_badly_off_centre(self):
        # A query at a multiple of the radius sits at the window's very
        # edge — the pathology Figure 8 illustrates.
        lo, hi = original_window(9, 9.0)
        assert lo == 9  # no coverage below the query at all

    def test_negative_bucket_alignment(self):
        lo, hi = original_window(-1, 3.0)
        assert lo <= -1 <= hi
        assert (hi - lo + 1) == 3

    def test_nested_for_integer_factor(self):
        inner = original_window(25, 3.0)
        outer = original_window(25, 9.0)
        assert outer[0] <= inner[0] and inner[1] <= outer[1]


class TestStableHashBank:
    def test_shapes(self):
        bank = StableHashBank(8, 5, seed=1)
        points = np.random.default_rng(0).normal(size=(10, 8))
        values = bank.hash_points(points)
        assert values.shape == (5, 10)
        assert values.dtype == np.int64

    def test_hash_point_matches_matrix(self):
        bank = StableHashBank(6, 4, seed=2)
        points = np.random.default_rng(1).normal(size=(3, 6))
        matrix = bank.hash_points(points)
        for i in range(3):
            np.testing.assert_array_equal(bank.hash_point(points[i]), matrix[:, i])

    def test_deterministic_given_seed(self):
        points = np.random.default_rng(3).normal(size=(5, 4))
        a = StableHashBank(4, 3, seed=7).hash_points(points)
        b = StableHashBank(4, 3, seed=7).hash_points(points)
        np.testing.assert_array_equal(a, b)

    def test_dimension_mismatch(self):
        bank = StableHashBank(4, 3, seed=1)
        with pytest.raises(DimensionalityMismatchError):
            bank.hash_points(np.zeros((2, 5)))
        with pytest.raises(DimensionalityMismatchError):
            bank.hash_point(np.zeros((2, 4)))

    def test_floor_consistency_with_projections(self):
        bank = StableHashBank(4, 3, r0=2.0, seed=5)
        points = np.random.default_rng(2).normal(size=(6, 4))
        raw = bank.projection_values(points)
        np.testing.assert_array_equal(
            bank.hash_points(points), np.floor(raw / 2.0).astype(np.int64)
        )

    def test_offsets_inside_c2lsh_domain(self):
        bank = StableHashBank(16, 50, c=3.0, t_max=255.0, seed=9)
        assert (bank._offsets >= 0).all()
        assert (bank._offsets < bank.offset_upper).all()

    def test_offset_domain_grows_with_t_max(self):
        small = StableHashBank(16, 2, c=3.0, t_max=1.0, seed=1)
        large = StableHashBank(16, 2, c=3.0, t_max=10_000.0, seed=1)
        assert large.offset_upper > small.offset_upper

    def test_chunked_hashing_consistent(self):
        # More points than the internal chunk size still hash identically
        # to a direct computation.
        bank = StableHashBank(4, 2, seed=4)
        points = np.random.default_rng(5).normal(size=(10_000, 4))
        got = bank.hash_points(points)
        want = np.floor(
            (points @ bank._projections + bank._offsets) / bank.r0
        ).astype(np.int64).T
        np.testing.assert_array_equal(got, want)

    def test_gaussian_base(self):
        bank = StableHashBank(8, 4, base_p=2.0, seed=6)
        values = bank.hash_points(np.random.default_rng(6).normal(size=(5, 8)))
        assert values.shape == (4, 5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"d": 0, "eta": 1},
            {"d": 4, "eta": 0},
            {"d": 4, "eta": 1, "r0": 0.0},
            {"d": 4, "eta": 1, "c": 1.0},
            {"d": 4, "eta": 1, "t_max": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(InvalidParameterError):
            StableHashBank(**kwargs)


class TestLocalitySensitivityEmpirical:
    """Close points should collide more often than distant points."""

    def test_collision_rates_ordered_by_distance(self):
        rng = np.random.default_rng(11)
        d = 16
        bank = StableHashBank(d, 400, r0=8.0, seed=12)
        base = rng.normal(size=d) * 10.0
        near = base + rng.normal(size=d) * 0.05
        far = base + rng.normal(size=d) * 10.0
        h_base = bank.hash_point(base)
        h_near = bank.hash_point(near)
        h_far = bank.hash_point(far)
        near_rate = (h_base == h_near).mean()
        far_rate = (h_base == h_far).mean()
        assert near_rate > far_rate
        assert near_rate > 0.5
