"""Tests for the LSB-forest baseline and its Z-order machinery."""

import numpy as np
import pytest

from repro.baselines.lsb import LSBConfig, LSBForest, interleave_bits, llcp
from repro.datasets import exact_knn, make_synthetic, sample_queries
from repro.errors import IndexNotBuiltError, InvalidParameterError


class TestInterleave:
    def test_known_pattern(self):
        # Two dims, 2 bits each: values (0b10, 0b01).
        # bit0: dim0=0, dim1=1 -> output bits 0,1 = 0,1
        # bit1: dim0=1, dim1=0 -> output bits 2,3 = 1,0
        out = interleave_bits(np.array([[0b10, 0b01]], dtype=np.uint64), 2)
        assert out[0] == 0b0110

    def test_zero(self):
        out = interleave_bits(np.zeros((3, 4), dtype=np.uint64), 8)
        np.testing.assert_array_equal(out, np.zeros(3, dtype=np.uint64))

    def test_injective_on_random_inputs(self):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 256, size=(500, 8)).astype(np.uint64)
        out = interleave_bits(values, 8)
        unique_in = np.unique(values, axis=0).shape[0]
        assert np.unique(out).size == unique_in

    def test_most_significant_bits_first(self):
        # Two values equal on high bits, differing on low bits, must share
        # a longer prefix than values differing on high bits.
        a = interleave_bits(np.array([[0b1000, 0b1000]], dtype=np.uint64), 4)[0]
        b = interleave_bits(np.array([[0b1000, 0b1001]], dtype=np.uint64), 4)[0]
        c = interleave_bits(np.array([[0b0000, 0b1000]], dtype=np.uint64), 4)[0]
        bits = 8
        assert llcp(np.array([b], dtype=np.uint64), int(a), bits)[0] > llcp(
            np.array([c], dtype=np.uint64), int(a), bits
        )[0]

    def test_rejects_too_many_bits(self):
        with pytest.raises(InvalidParameterError):
            interleave_bits(np.zeros((1, 9), dtype=np.uint64), 8)


class TestLLCP:
    def test_identical_values(self):
        a = np.array([12345], dtype=np.uint64)
        assert llcp(a, 12345, 64)[0] == 64

    def test_known_prefix(self):
        # 0b1010 vs 0b1011 in 4 bits: first difference at the last bit.
        assert llcp(np.array([0b1010], dtype=np.uint64), 0b1011, 4)[0] == 3

    def test_no_common_prefix(self):
        assert llcp(np.array([0b1000], dtype=np.uint64), 0b0000, 4)[0] == 0

    def test_vectorised(self):
        a = np.array([0b1111, 0b1110, 0b0000], dtype=np.uint64)
        out = llcp(a, 0b1111, 4)
        np.testing.assert_array_equal(out, [4, 3, 0])


class TestLSBForest:
    @pytest.fixture(scope="class")
    def split(self):
        data = make_synthetic(800, 16, value_range=(0, 200), seed=41)
        return sample_queries(data, n_queries=3, seed=42)

    @pytest.fixture(scope="class")
    def forest(self, split):
        return LSBForest(LSBConfig(seed=5)).build(split.data)

    def test_build_and_size(self, forest):
        assert forest.is_built
        assert forest.index_size_mb() > 0

    def test_self_query_within_guarantee(self, forest, split):
        # Unlike collision-counting methods, the LSB walk may terminate
        # (event E1) before reaching an exact duplicate — its guarantee is
        # a c-approximation at the LLCP level's granularity.
        point = split.data[11]
        result = forest.knn(point, 1)
        assert result.distances[0] <= forest.config.c * forest._width

    def test_results_sorted(self, forest, split):
        result = forest.knn(split.queries[0], 10)
        assert (np.diff(result.distances) >= 0).all()
        assert result.ids.shape == (10,)

    def test_quality_beats_random(self, forest, split):
        rng = np.random.default_rng(3)
        _, true_dists = exact_knn(split.data, split.queries, 10, 2.0)
        from repro.metrics.lp import lp_distance

        for qi, query in enumerate(split.queries):
            result = forest.knn(query, 10)
            random_ids = rng.choice(split.data.shape[0], 10, replace=False)
            random_mean = float(
                np.mean(np.sort(lp_distance(split.data[random_ids], query, 2.0)))
            )
            assert result.distances.mean() < random_mean
            assert result.distances[0] <= 3.0 * true_dists[qi][0]

    def test_io_counted(self, forest, split):
        result = forest.knn(split.queries[1], 5)
        assert result.io.sequential >= result.candidates
        assert result.io.random == result.candidates

    def test_termination_reason_reported(self, forest, split):
        result = forest.knn(split.queries[2], 5)
        assert result.terminated_by in ("E1", "E2", "exhausted")

    def test_fractional_rerank(self, forest, split):
        from repro.metrics.lp import lp_distance

        query = split.queries[0]
        result = forest.knn(query, 5, p=0.5)
        recomputed = lp_distance(split.data[result.ids], query, 0.5)
        np.testing.assert_allclose(result.distances, recomputed)

    def test_query_before_build(self):
        with pytest.raises(IndexNotBuiltError):
            LSBForest().knn(np.zeros(4), 1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"m": 0},
            {"num_trees": 0},
            {"m": 16, "bits_per_dim": 8},
            {"c": 1.0},
            {"visit_factor": 0},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(InvalidParameterError):
            LSBForest(LSBConfig(**kwargs))

    def test_k_validation(self, forest, split):
        with pytest.raises(InvalidParameterError):
            forest.knn(split.queries[0], 0)
