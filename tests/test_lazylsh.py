"""Unit and behaviour tests for the LazyLSH index (Algorithms 3-4)."""

import numpy as np
import pytest

from repro import LazyLSH, LazyLSHConfig
from repro.datasets import exact_knn, make_synthetic
from repro.errors import (
    DimensionalityMismatchError,
    IndexNotBuiltError,
    InvalidParameterError,
    UnsupportedMetricError,
)
from repro.eval import overall_ratio
from repro.metrics.lp import lp_distance


class TestBuild:
    def test_build_returns_self(self, small_config, small_split):
        index = LazyLSH(small_config)
        assert index.build(small_split.data) is index

    def test_introspection(self, built_index, small_split):
        assert built_index.is_built
        assert built_index.num_points == small_split.data.shape[0]
        assert built_index.dimensionality == 16
        assert built_index.eta > 0
        assert built_index.index_size_mb() > 0

    def test_eta_matches_p_min(self, built_index):
        engine = built_index.parameter_engine
        assert built_index.eta == engine.eta(built_index.config.p_min)

    def test_beta_resolution(self, built_index, small_split):
        n = small_split.data.shape[0]
        assert built_index.beta == pytest.approx(max(100.0 / n, 1e-4))

    def test_rejects_bad_data(self, small_config):
        with pytest.raises(InvalidParameterError):
            LazyLSH(small_config).build(np.zeros(5))
        with pytest.raises(InvalidParameterError):
            LazyLSH(small_config).build(np.full((3, 2), np.nan))
        with pytest.raises(InvalidParameterError):
            LazyLSH(small_config).build(np.zeros((0, 4)))

    def test_query_before_build(self, small_config):
        index = LazyLSH(small_config)
        with pytest.raises(IndexNotBuiltError):
            index.knn(np.zeros(4), 1)
        with pytest.raises(IndexNotBuiltError):
            _ = index.num_points

    def test_invalid_rehashing_mode(self, small_config):
        with pytest.raises(InvalidParameterError):
            LazyLSH(small_config, rehashing="diagonal")


class TestMetricSupport:
    def test_supported_metrics_include_requested_range(self, built_index):
        supported = built_index.supported_metrics()
        assert 0.5 in supported
        assert 1.0 in supported

    def test_unsupported_needs_more_functions(self, small_split):
        # Built for p_min=0.9 only; p=0.5 needs more hash functions.
        cfg = LazyLSHConfig(
            c=3.0, p_min=0.9, seed=11, mc_samples=20_000, mc_buckets=100
        )
        index = LazyLSH(cfg).build(small_split.data)
        with pytest.raises(UnsupportedMetricError) as exc_info:
            index.knn(small_split.queries[0], 5, p=0.5)
        assert "rebuild with a smaller p_min" in str(exc_info.value)

    def test_insensitive_metric_rejected(self, built_index):
        with pytest.raises(UnsupportedMetricError):
            built_index.knn(np.zeros(16), 5, p=0.2)


class TestKnnQueries:
    def test_result_shape_and_order(self, built_index, small_split):
        result = built_index.knn(small_split.queries[0], 10, p=0.7)
        assert result.ids.shape == (10,)
        assert result.distances.shape == (10,)
        assert (np.diff(result.distances) >= 0).all()
        assert result.p == 0.7
        assert result.k == 10

    def test_distances_are_true_lp_distances(self, built_index, small_split):
        query = small_split.queries[1]
        result = built_index.knn(query, 5, p=0.8)
        recomputed = lp_distance(built_index.data[result.ids], query, 0.8)
        np.testing.assert_allclose(result.distances, recomputed)

    def test_ids_unique(self, built_index, small_split):
        result = built_index.knn(small_split.queries[2], 20, p=1.0)
        assert len(set(result.ids.tolist())) == 20

    def test_io_accounting_positive(self, built_index, small_split):
        result = built_index.knn(small_split.queries[0], 5, p=1.0)
        assert result.io.sequential > 0
        assert result.io.random >= 5
        assert result.candidates >= 5

    def test_global_io_counter_accumulates(self, small_config, small_split):
        index = LazyLSH(small_config).build(small_split.data)
        assert index.io_stats.total == 0
        r1 = index.knn(small_split.queries[0], 5, p=1.0)
        assert index.io_stats.total == r1.io.total
        r2 = index.knn(small_split.queries[1], 5, p=1.0)
        assert index.io_stats.total == r1.io.total + r2.io.total

    def test_approximation_quality(self, built_index, small_split):
        # Overall ratio within the c=3 guarantee and much better than the
        # trivial bound on this easy dataset.
        for p in (0.5, 1.0):
            true_ids, true_dists = exact_knn(
                built_index.data, small_split.queries, 10, p
            )
            ratios = []
            for qi, query in enumerate(small_split.queries):
                result = built_index.knn(query, 10, p=p)
                ratios.append(overall_ratio(result.distances, true_dists[qi]))
            assert np.mean(ratios) < 1.5
            assert np.max(ratios) < built_index.config.c

    def test_exact_match_found_for_indexed_point(self, built_index):
        # Querying with an indexed point must find it at distance zero.
        point = built_index.data[17]
        result = built_index.knn(point, 1, p=1.0)
        assert result.distances[0] == pytest.approx(0.0)
        assert result.ids[0] == 17

    def test_k_validation(self, built_index, small_split):
        q = small_split.queries[0]
        with pytest.raises(InvalidParameterError):
            built_index.knn(q, 0, p=1.0)
        with pytest.raises(InvalidParameterError):
            built_index.knn(q, built_index.num_points + 1, p=1.0)

    def test_query_validation(self, built_index):
        with pytest.raises(DimensionalityMismatchError):
            built_index.knn(np.zeros(7), 1, p=1.0)
        with pytest.raises(InvalidParameterError):
            built_index.knn(np.full(16, np.inf), 1, p=1.0)
        with pytest.raises(InvalidParameterError):
            built_index.knn(np.zeros((2, 16)), 1, p=1.0)

    def test_k_equals_n(self, small_config):
        data = make_synthetic(60, 8, value_range=(0, 50), seed=3)
        index = LazyLSH(small_config).build(data)
        result = index.knn(data[0], 60, p=1.0)
        assert result.ids.shape == (60,)
        assert sorted(result.ids.tolist()) == list(range(60))

    def test_rounds_grow_geometrically_bounded(self, built_index, small_split):
        result = built_index.knn(small_split.queries[0], 5, p=1.0)
        assert 1 <= result.rounds <= 64


class TestRangeQueries:
    def test_found_within_c_delta(self, built_index, small_split):
        query = small_split.queries[0]
        # Use the true NN distance as the range radius -> must find.
        _, true_dists = exact_knn(built_index.data, query, 1, 1.0)
        delta = float(true_dists[0, 0]) * 1.1
        result = built_index.range_query(query, delta, 1.0)
        assert result.found
        assert result.distance < built_index.config.c * delta
        assert result.point_id is not None

    def test_not_found_for_tiny_radius(self, built_index, small_split):
        result = built_index.range_query(small_split.queries[0], 1e-9, 1.0)
        assert not result.found
        assert result.point_id is None
        assert result.distance is None

    def test_radius_validation(self, built_index, small_split):
        with pytest.raises(InvalidParameterError):
            built_index.range_query(small_split.queries[0], 0.0, 1.0)

    def test_io_recorded(self, built_index, small_split):
        _, true_dists = exact_knn(built_index.data, small_split.queries[0], 1, 0.8)
        result = built_index.range_query(
            small_split.queries[0], float(true_dists[0, 0]) * 1.2, 0.8
        )
        assert result.io.sequential > 0


class TestRehashingAblation:
    def test_original_mode_runs(self, small_config, small_split):
        index = LazyLSH(small_config, rehashing="original").build(small_split.data)
        result = index.knn(small_split.queries[0], 10, p=1.0)
        assert result.ids.shape == (10,)
        assert (np.diff(result.distances) >= 0).all()

    def test_query_centric_no_worse_on_average(self, small_config, small_split):
        # Figure 13: query-centric rehashing yields equal-or-better overall
        # ratios than the original aligned rehashing.
        centric = LazyLSH(small_config).build(small_split.data)
        original = LazyLSH(small_config, rehashing="original").build(
            small_split.data
        )
        _, true_dists = exact_knn(small_split.data, small_split.queries, 10, 1.0)
        ratios_centric, ratios_original = [], []
        for qi, query in enumerate(small_split.queries):
            rc = centric.knn(query, 10, p=1.0)
            ro = original.knn(query, 10, p=1.0)
            ratios_centric.append(overall_ratio(rc.distances, true_dists[qi]))
            ratios_original.append(overall_ratio(ro.distances, true_dists[qi]))
        assert np.mean(ratios_centric) <= np.mean(ratios_original) + 0.02


class TestDeterminism:
    def test_same_seed_same_results(self, small_split):
        cfg = LazyLSHConfig(c=3.0, seed=99, mc_samples=20_000, mc_buckets=100)
        a = LazyLSH(cfg).build(small_split.data)
        b = LazyLSH(cfg).build(small_split.data)
        ra = a.knn(small_split.queries[0], 10, p=0.7)
        rb = b.knn(small_split.queries[0], 10, p=0.7)
        np.testing.assert_array_equal(ra.ids, rb.ids)
        assert ra.io.total == rb.io.total
