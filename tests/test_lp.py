"""Unit tests for repro.metrics.lp: distances, balls and Eq. 11 bounds."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.metrics.lp import (
    Ball,
    l1_bounds,
    lp_distance,
    lp_distance_matrix,
    lp_norm,
    norm_equivalence_bounds,
    validate_p,
)


class TestValidateP:
    def test_accepts_fractional(self):
        assert validate_p(0.5) == 0.5

    def test_accepts_above_two_by_default(self):
        assert validate_p(3.0) == 3.0

    def test_rejects_above_two_when_asked(self):
        with pytest.raises(InvalidParameterError):
            validate_p(2.5, allow_above_two=False)

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects_non_positive_and_non_finite(self, bad):
        with pytest.raises(InvalidParameterError):
            validate_p(bad)

    def test_returns_float(self):
        assert isinstance(validate_p(1), float)


class TestLpNorm:
    def test_l1_is_sum_of_abs(self):
        v = np.array([1.0, -2.0, 3.0])
        assert lp_norm(v, 1.0) == pytest.approx(6.0)

    def test_l2_is_euclidean(self):
        v = np.array([3.0, 4.0])
        assert lp_norm(v, 2.0) == pytest.approx(5.0)

    def test_fractional_norm_formula(self):
        v = np.array([4.0, 9.0])
        # (sqrt(4) + sqrt(9))^2 = 25
        assert lp_norm(v, 0.5) == pytest.approx(25.0)

    def test_axis_handling(self):
        m = np.array([[1.0, 1.0], [2.0, 2.0]])
        np.testing.assert_allclose(lp_norm(m, 1.0, axis=1), [2.0, 4.0])
        np.testing.assert_allclose(lp_norm(m, 1.0, axis=0), [3.0, 3.0])

    def test_zero_vector(self):
        assert lp_norm(np.zeros(5), 0.7) == pytest.approx(0.0)

    def test_fractional_less_concentrated_than_l1(self):
        # For p < 1 the norm of a multi-coordinate vector exceeds its l1.
        v = np.array([1.0, 1.0, 1.0, 1.0])
        assert lp_norm(v, 0.5) > lp_norm(v, 1.0)


class TestLpDistance:
    def test_single_pair(self):
        a = np.array([0.0, 0.0])
        b = np.array([1.0, 1.0])
        assert lp_distance(a, b, 1.0) == pytest.approx(2.0)
        assert lp_distance(a, b, 2.0) == pytest.approx(np.sqrt(2.0))
        assert lp_distance(a, b, 0.5) == pytest.approx(4.0)

    def test_matrix_vs_vector_broadcast(self):
        x = np.array([[0.0, 0.0], [3.0, 4.0]])
        q = np.array([0.0, 0.0])
        np.testing.assert_allclose(lp_distance(x, q, 2.0), [0.0, 5.0])

    def test_symmetry(self, rng):
        a = rng.normal(size=8)
        b = rng.normal(size=8)
        for p in (0.5, 0.8, 1.0, 2.0):
            assert lp_distance(a, b, p) == pytest.approx(lp_distance(b, a, p))

    def test_identity(self, rng):
        a = rng.normal(size=8)
        assert lp_distance(a, a, 0.6) == pytest.approx(0.0)

    def test_scale_homogeneity(self, rng):
        # lp(c*x, c*y) = c * lp(x, y) — the Lemma 3 workhorse.
        a = rng.normal(size=6)
        b = rng.normal(size=6)
        for p in (0.5, 1.0, 1.5):
            assert lp_distance(3.0 * a, 3.0 * b, p) == pytest.approx(
                3.0 * float(lp_distance(a, b, p))
            )


class TestLpDistanceMatrix:
    def test_matches_pairwise_loop(self, rng):
        x = rng.normal(size=(7, 5))
        y = rng.normal(size=(4, 5))
        for p in (0.5, 1.0, 2.0):
            full = lp_distance_matrix(x, y, p)
            assert full.shape == (7, 4)
            for i in range(7):
                for j in range(4):
                    assert full[i, j] == pytest.approx(
                        float(lp_distance(x[i], y[j], p))
                    )

    def test_chunking_consistency(self, rng):
        # Force a path that needs several chunks by using a biggish matrix.
        x = rng.normal(size=(500, 40))
        y = rng.normal(size=(30, 40))
        full = lp_distance_matrix(x, y, 1.0)
        direct = np.abs(x[:, None, :] - y[None, :, :]).sum(axis=-1)
        np.testing.assert_allclose(full, direct)


class TestBounds:
    def test_l1_bounds_fractional(self):
        lower, upper = l1_bounds(1.0, 4, 0.5)
        # d^(1 - 1/p) = 4^-1 = 0.25
        assert lower == pytest.approx(0.25)
        assert upper == pytest.approx(1.0)

    def test_l1_bounds_p_above_one(self):
        lower, upper = l1_bounds(1.0, 4, 2.0)
        # d^(1 - 1/2) = 2
        assert lower == pytest.approx(1.0)
        assert upper == pytest.approx(2.0)

    def test_l1_bounds_p_equal_one_degenerate(self):
        lower, upper = l1_bounds(3.0, 10, 1.0)
        assert lower == upper == pytest.approx(3.0)

    def test_bounds_scale_linearly_with_delta(self):
        l1, u1 = l1_bounds(1.0, 8, 0.7)
        l2, u2 = l1_bounds(2.5, 8, 0.7)
        assert l2 == pytest.approx(2.5 * l1)
        assert u2 == pytest.approx(2.5 * u1)

    def test_generalised_bounds_match_l1_special_case(self):
        assert norm_equivalence_bounds(1.0, 16, 0.5, 1.0) == l1_bounds(1.0, 16, 0.5)

    def test_generalised_bounds_l2_base(self):
        lower, upper = norm_equivalence_bounds(1.0, 16, 0.5, 2.0)
        # p < s: [delta * d^(1/s - 1/p), delta] = [16^(0.5-2), 1]
        assert lower == pytest.approx(16.0 ** (-1.5))
        assert upper == pytest.approx(1.0)

    def test_bounds_are_tight_empirically(self, rng):
        # Every actual pair respects the interval.
        d, p = 12, 0.6
        for _ in range(50):
            x = rng.normal(size=d)
            y = rng.normal(size=d)
            delta = float(lp_distance(x, y, p))
            lower, upper = l1_bounds(delta, d, p)
            l1 = float(lp_distance(x, y, 1.0))
            assert lower - 1e-9 <= l1 <= upper + 1e-9

    def test_bound_achievers(self):
        # The upper bound (p<1) is achieved on a coordinate axis, the
        # lower bound by an equal-coordinate vector.
        d, p = 9, 0.5
        axis = np.zeros(d)
        axis[0] = 1.0
        delta = float(lp_norm(axis, p))
        lower, upper = l1_bounds(delta, d, p)
        assert float(lp_norm(axis, 1.0)) == pytest.approx(upper)
        equal = np.full(d, 1.0)
        delta = float(lp_norm(equal, p))
        lower, upper = l1_bounds(delta, d, p)
        assert float(lp_norm(equal, 1.0)) == pytest.approx(lower)

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            l1_bounds(-1.0, 4, 0.5)
        with pytest.raises(InvalidParameterError):
            l1_bounds(1.0, 0, 0.5)


class TestBall:
    def test_contains(self):
        ball = Ball(center=np.zeros(2), radius=2.0, p=1.0)
        points = np.array([[1.0, 0.5], [3.0, 0.0], [1.0, 1.0]])
        np.testing.assert_array_equal(
            ball.contains(points), [True, False, True]
        )

    def test_boundary_is_inclusive(self):
        ball = Ball(center=np.zeros(2), radius=1.0, p=2.0)
        assert ball.contains(np.array([[1.0, 0.0]]))[0]

    def test_fractional_ball_is_star_shaped(self):
        # The l0.5 unit ball excludes the (0.6, 0.6) point the l1 ball
        # of the same radius would include.
        ball_half = Ball(center=np.zeros(2), radius=1.0, p=0.5)
        ball_one = Ball(center=np.zeros(2), radius=1.0, p=1.0)
        point = np.array([[0.4, 0.4]])
        assert ball_one.contains(point)[0]
        assert not ball_half.contains(point)[0]

    def test_l1_bounds_delegation(self):
        ball = Ball(center=np.zeros(4), radius=2.0, p=0.5)
        assert ball.l1_bounds() == l1_bounds(2.0, 4, 0.5)

    def test_negative_radius_rejected(self):
        with pytest.raises(InvalidParameterError):
            Ball(center=np.zeros(2), radius=-1.0, p=1.0)

    def test_dimensionality(self):
        assert Ball(center=np.zeros(7), radius=1.0, p=1.0).dimensionality == 7
