"""Flat execution engine versus the scalar reference path.

The flat engine is a pure execution-plan change: batched window scans,
vectorised collision counting and interval-arithmetic I/O charging must
reproduce the scalar per-function loop *bit for bit* — same neighbour
ids, distances, round counts, candidate counts, and (because simulated
I/O is the paper's measured quantity) the same sequential and random
I/O per query.  These tests pin that equivalence across metrics, both
rehashing modes, dynamic updates, the multi-query engine and the batch
API, plus the two-level window search against a plain ``searchsorted``
reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import LazyLSH, LazyLSHConfig, MultiQueryEngine, Telemetry, knn_batch
from repro.datasets import make_synthetic, sample_queries
from repro.errors import InvalidParameterError
from repro.obs import TERMINATION_REASONS
from repro.storage import InvertedListStore, PageLayout

P_VALUES = (0.5, 0.75, 1.0)


def _config(seed: int = 13) -> LazyLSHConfig:
    return LazyLSHConfig(
        c=3.0, p_min=0.5, seed=seed, mc_samples=20_000, mc_buckets=100
    )


def assert_results_identical(a, b) -> None:
    """Flat and scalar KnnResults must match bit for bit, I/O included."""
    assert np.array_equal(a.ids, b.ids)
    assert np.array_equal(a.distances, b.distances)
    assert a.ids.dtype == b.ids.dtype
    assert a.rounds == b.rounds
    assert a.candidates == b.candidates
    assert a.io.sequential == b.io.sequential
    assert a.io.random == b.io.random
    assert a.termination == b.termination
    assert a.termination in TERMINATION_REASONS


def assert_traces_identical(a, b) -> None:
    """Flat and scalar QueryTraces must agree round for round."""
    assert a.p == b.p and a.k == b.k
    assert a.termination == b.termination
    assert a.num_rounds == b.num_rounds
    for ra, rb in zip(a.rounds, b.rounds):
        assert ra.round == rb.round
        assert ra.level == rb.level
        assert ra.radius == rb.radius
        assert ra.collisions == rb.collisions
        assert ra.crossings == rb.crossings
        assert ra.candidates == rb.candidates
        assert ra.within == rb.within
        assert ra.io.sequential == rb.io.sequential
        assert ra.io.random == rb.io.random
    assert a.io_delta_sum().to_dict() == a.io.to_dict()
    assert b.io_delta_sum().to_dict() == b.io.to_dict()


@pytest.fixture(scope="module")
def engine_split():
    data = make_synthetic(900, 16, value_range=(0, 400), seed=21)
    return sample_queries(data, n_queries=3, seed=22)


@pytest.fixture(scope="module", params=["query_centric", "original"])
def dual_index(request, engine_split):
    """One index per rehashing mode, shared across the matrix below."""
    return LazyLSH(_config(), rehashing=request.param).build(engine_split.data)


class TestFlatMatchesScalar:
    @pytest.mark.parametrize("p", P_VALUES)
    def test_knn_identical(self, dual_index, engine_split, p):
        for query in engine_split.queries:
            flat = dual_index.knn(query, 10, p=p, engine="flat")
            scalar = dual_index.knn(query, 10, p=p, engine="scalar")
            assert_results_identical(flat, scalar)

    @pytest.mark.parametrize("rehashing", ["query_centric", "original"])
    def test_knn_identical_after_updates(self, engine_split, rehashing):
        index = LazyLSH(_config(seed=17), rehashing=rehashing).build(
            engine_split.data[:600]
        )
        index.remove(np.arange(0, 40, 7))
        index.insert(engine_split.data[600:680])
        for p in P_VALUES:
            for query in engine_split.queries:
                flat = index.knn(query, 8, p=p, engine="flat")
                scalar = index.knn(query, 8, p=p, engine="scalar")
                assert_results_identical(flat, scalar)


class TestMultiQuery:
    def test_flat_matches_scalar(self, engine_split):
        index = LazyLSH(_config()).build(engine_split.data)
        engine = MultiQueryEngine(index)
        for query in engine_split.queries:
            flat = engine.knn(query, 10, metrics=P_VALUES, engine="flat")
            scalar = engine.knn(query, 10, metrics=P_VALUES, engine="scalar")
            assert flat.metrics == scalar.metrics == sorted(P_VALUES)
            for p in P_VALUES:
                assert_results_identical(flat[p], scalar[p])
            # The shared scan's total I/O (marginal attribution summed)
            # must agree too.
            assert flat.io.sequential == scalar.io.sequential
            assert flat.io.random == scalar.io.random


class TestBatchApi:
    def test_single_metric_matches_scalar_loop(self, engine_split):
        index = LazyLSH(_config()).build(engine_split.data)
        flat = knn_batch(index, engine_split.queries, 10, p=0.5)
        scalar = knn_batch(index, engine_split.queries, 10, p=0.5, engine="scalar")
        assert len(flat) == len(scalar) == len(engine_split.queries)
        for a, b in zip(flat, scalar):
            assert_results_identical(a, b)
        assert flat.io.sequential == scalar.io.sequential
        assert flat.io.random == scalar.io.random

    def test_metrics_mode_matches_scalar_loop(self, engine_split):
        index = LazyLSH(_config()).build(engine_split.data)
        flat = knn_batch(index, engine_split.queries, 10, metrics=P_VALUES)
        scalar = knn_batch(
            index, engine_split.queries, 10, metrics=P_VALUES, engine="scalar"
        )
        for a, b in zip(flat, scalar):
            for p in P_VALUES:
                assert_results_identical(a[p], b[p])
            assert a.io.sequential == b.io.sequential
            assert a.io.random == b.io.random

    def test_share_pages_identical_results_fewer_reads(self, engine_split):
        index = LazyLSH(_config()).build(engine_split.data)
        plain = knn_batch(index, engine_split.queries, 10, p=0.5)
        shared = knn_batch(
            index, engine_split.queries, 10, p=0.5, share_pages=True
        )
        for a, b in zip(plain, shared):
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.distances, b.distances)
            assert a.rounds == b.rounds
        # A batch-wide buffer pool can only drop repeat page reads.
        assert shared.io.sequential <= plain.io.sequential
        assert shared.io.random <= plain.io.random


class TestTraceEquivalence:
    """Per-query telemetry traces must not depend on the execution plan."""

    @pytest.mark.parametrize("p", P_VALUES)
    def test_knn_traces_identical(self, dual_index, engine_split, p):
        for query in engine_split.queries:
            tf, ts = Telemetry(), Telemetry()
            flat = dual_index.knn(query, 10, p=p, engine="flat", telemetry=tf)
            scalar = dual_index.knn(
                query, 10, p=p, engine="scalar", telemetry=ts
            )
            assert_results_identical(flat, scalar)
            assert len(tf.traces) == len(ts.traces) == 1
            assert_traces_identical(tf.traces[0], ts.traces[0])
            # The trace's totals mirror the result's I/O exactly.
            assert tf.traces[0].io.to_dict() == flat.io.to_dict()
            assert tf.traces[0].candidates == flat.candidates

    def test_traced_run_matches_untraced(self, dual_index, engine_split):
        for query in engine_split.queries:
            plain = dual_index.knn(query, 10, p=0.5)
            traced = dual_index.knn(
                query, 10, p=0.5, telemetry=Telemetry()
            )
            assert_results_identical(plain, traced)

    def test_multiquery_traces_identical(self, engine_split):
        index = LazyLSH(_config()).build(engine_split.data)
        engine = MultiQueryEngine(index)
        for query in engine_split.queries:
            tf, ts = Telemetry(), Telemetry()
            engine.knn(query, 10, metrics=P_VALUES, engine="flat", telemetry=tf)
            engine.knn(query, 10, metrics=P_VALUES, engine="scalar", telemetry=ts)
            assert len(tf.traces) == len(ts.traces) == len(P_VALUES)
            by_p = lambda t: t.p  # noqa: E731
            for a, b in zip(
                sorted(tf.traces, key=by_p), sorted(ts.traces, key=by_p)
            ):
                assert_traces_identical(a, b)

    def test_batch_traces_per_query(self, engine_split):
        index = LazyLSH(_config()).build(engine_split.data)
        telemetry = Telemetry()
        batch = knn_batch(
            index, engine_split.queries, 10, p=0.5, telemetry=telemetry
        )
        assert len(telemetry.traces) == len(engine_split.queries)
        assert [t.query_id for t in telemetry.traces] == list(
            range(len(engine_split.queries))
        )
        scalar_tel = Telemetry()
        knn_batch(
            index,
            engine_split.queries,
            10,
            p=0.5,
            engine="scalar",
            telemetry=scalar_tel,
        )
        for a, b, result in zip(
            telemetry.traces, scalar_tel.traces, batch.results
        ):
            assert a.query_id == b.query_id
            assert_traces_identical(a, b)
            assert a.io_delta_sum().to_dict() == result.io.to_dict()


class TestValidation:
    def test_knn_rejects_unknown_engine(self, dual_index, engine_split):
        with pytest.raises(InvalidParameterError, match="engine"):
            dual_index.knn(engine_split.queries[0], 5, p=0.5, engine="warp")

    def test_knn_batch_rejects_unknown_engine(self, dual_index, engine_split):
        with pytest.raises(InvalidParameterError, match="engine"):
            knn_batch(dual_index, engine_split.queries, 5, p=0.5, engine="warp")

    def test_share_pages_incompatible_with_scalar(self, dual_index, engine_split):
        with pytest.raises(InvalidParameterError, match="share_pages"):
            knn_batch(
                dual_index,
                engine_split.queries,
                5,
                p=0.5,
                engine="scalar",
                share_pages=True,
            )

    def test_metrics_mode_requires_query_centric(self, engine_split):
        index = LazyLSH(_config(), rehashing="original").build(engine_split.data)
        with pytest.raises(InvalidParameterError, match="query-centric"):
            knn_batch(index, engine_split.queries, 5, metrics=P_VALUES)
        with pytest.raises(InvalidParameterError, match="query-centric"):
            MultiQueryEngine(index)


class TestTwoLevelSearch:
    """The batched two-level window search against a searchsorted loop."""

    @pytest.mark.parametrize("span", [10, 1_000, 1_000_000])
    @pytest.mark.parametrize("side", ["left", "right"])
    def test_matches_reference(self, span, side):
        rng = np.random.default_rng(span)
        num_functions, n = 5, 1_500
        hashes = rng.integers(-span, span, size=(num_functions, n))
        store = InvertedListStore(hashes, PageLayout(page_size=256, entry_size=8))
        funcs = rng.integers(0, num_functions, size=4_000)
        bounds = rng.integers(-span - 5, span + 5, size=4_000)
        got = store.batch_entry_positions(funcs, bounds, side)
        for j in range(funcs.size):
            f = int(funcs[j])
            expect = f * n + int(
                np.searchsorted(store._values[f], bounds[j], side=side)
            )
            assert got[j] == expect

    def test_refinement_window_boundaries(self):
        # Needles at exact run boundaries and at every multiple of the
        # coarse stride, where the top-level index hands refinement the
        # narrowest possible window.
        rng = np.random.default_rng(99)
        hashes = np.repeat(np.arange(0, 700, dtype=np.int64), 2)[None, :]
        store = InvertedListStore(hashes)
        bounds = np.concatenate(
            [np.arange(-1, 701), np.arange(0, 1400, 256)]
        )
        funcs = np.zeros(bounds.size, dtype=np.int64)
        for side in ("left", "right"):
            got = store.batch_entry_positions(funcs, bounds, side)
            expect = np.searchsorted(store._values[0], bounds, side=side)
            assert np.array_equal(got, expect)
