"""Tests for the multi-query optimisation engine (Section 4.3)."""

import numpy as np
import pytest

from repro import LazyLSH, MultiQueryEngine
from repro.errors import InvalidParameterError

P_VALUES = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


@pytest.fixture(scope="module")
def engine(built_index) -> MultiQueryEngine:
    return MultiQueryEngine(built_index)


class TestConstruction:
    def test_requires_built_index(self, small_config):
        with pytest.raises(InvalidParameterError):
            MultiQueryEngine(LazyLSH(small_config))


class TestBatchedKnn:
    def test_all_metrics_answered(self, engine, small_split):
        batch = engine.knn(small_split.queries[0], 5, metrics=P_VALUES)
        assert sorted(batch.metrics) == sorted(P_VALUES)
        for p in P_VALUES:
            result = batch[p]
            assert result.ids.shape == (5,)
            assert result.p == p

    def test_results_match_individual_queries(self, engine, built_index, small_split):
        # Sharing I/O must not change the answers.
        query = small_split.queries[1]
        batch = engine.knn(query, 5, metrics=P_VALUES)
        for p in P_VALUES:
            individual = built_index.knn(query, 5, p=p)
            np.testing.assert_array_equal(batch[p].ids, individual.ids)
            np.testing.assert_allclose(batch[p].distances, individual.distances)

    def test_batch_io_close_to_single_smallest_p(self, engine, built_index, small_split):
        # Figure 12: the batch's total I/O is close to the single l0.5
        # query's I/O — nowhere near six separate queries.
        query = small_split.queries[2]
        batch = engine.knn(query, 5, metrics=P_VALUES)
        single = built_index.knn(query, 5, p=0.5)
        separate = sum(built_index.knn(query, 5, p=p).io.total for p in P_VALUES)
        assert batch.io.total < separate
        assert batch.io.total <= single.io.total * 2.0

    def test_total_is_sum_of_marginals(self, engine, small_split):
        batch = engine.knn(small_split.queries[0], 5, metrics=P_VALUES)
        assert batch.io.sequential == sum(
            batch[p].io.sequential for p in P_VALUES
        )
        assert batch.io.random == sum(batch[p].io.random for p in P_VALUES)

    def test_first_metric_bears_most_io(self, engine, small_split):
        batch = engine.knn(small_split.queries[3], 5, metrics=P_VALUES)
        first = batch[0.5].io.sequential
        rest = sum(batch[p].io.sequential for p in P_VALUES[1:])
        assert first > rest

    def test_duplicate_and_unsorted_metrics_normalised(self, engine, small_split):
        batch = engine.knn(
            small_split.queries[0], 5, metrics=[1.0, 0.5, 1.0, 0.5]
        )
        assert batch.metrics == [0.5, 1.0]

    def test_empty_metrics_rejected(self, engine, small_split):
        with pytest.raises(InvalidParameterError):
            engine.knn(small_split.queries[0], 5, metrics=[])

    def test_unsupported_metric_rejected_upfront(self, engine, small_split):
        from repro.errors import UnsupportedMetricError

        with pytest.raises(UnsupportedMetricError):
            engine.knn(small_split.queries[0], 5, metrics=[0.5, 0.2])

    def test_random_io_not_double_charged(self, engine, built_index, small_split):
        # Candidates shared across metrics are fetched once.
        query = small_split.queries[1]
        batch = engine.knn(query, 5, metrics=P_VALUES)
        separate_random = sum(
            built_index.knn(query, 5, p=p).io.random for p in P_VALUES
        )
        assert batch.io.random < separate_random
