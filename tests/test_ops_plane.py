"""Tests for the ops plane: slow-query log, HTTP exporter, guarantee
auditor, and the Prometheus text exposition round trip (DESIGN §10)."""

import json
import logging
import urllib.error
import urllib.request
from types import SimpleNamespace

import numpy as np
import pytest

from repro import LazyLSH, LazyLSHConfig, Telemetry
from repro.datasets import make_synthetic, sample_queries
from repro.errors import InvalidParameterError
from repro.obs import (
    GuaranteeAuditor,
    MetricsRegistry,
    ObsExporter,
    SlowQueryLog,
    histogram_quantile,
    parse_prometheus_text,
)


@pytest.fixture(scope="module")
def obs_index():
    data = make_synthetic(500, 12, seed=31)
    split = sample_queries(data, n_queries=4, seed=32)
    cfg = LazyLSHConfig(
        c=3.0, p_min=0.5, seed=31, mc_samples=20_000, mc_buckets=100
    )
    return LazyLSH(cfg).build(split.data), split.queries


def _fake_trace(query_id, elapsed, seq=0, rnd=0):
    io = SimpleNamespace(
        sequential=seq,
        random=rnd,
        to_dict=lambda: {"sequential": seq, "random": rnd},
    )
    return SimpleNamespace(
        query_id=query_id,
        elapsed_seconds=elapsed,
        io=io,
        to_dict=lambda: {"query_id": query_id},
    )


class TestSlowQueryLog:
    def test_capture_all_when_unthresholded(self):
        log = SlowQueryLog(capacity=4)
        assert log.offer(_fake_trace(0, 0.001))
        assert len(log) == 1
        assert log.to_dicts()[0]["query_id"] == 0

    def test_latency_and_io_thresholds_are_ors(self):
        log = SlowQueryLog(
            capacity=4, latency_threshold_seconds=0.5, io_threshold=100
        )
        assert not log.offer(_fake_trace(0, 0.01, seq=5, rnd=5))
        assert log.offer(_fake_trace(1, 0.9))  # slow
        assert log.offer(_fake_trace(2, 0.01, seq=60, rnd=60))  # IO-heavy
        assert [e["query_id"] for e in log.to_dicts()] == [1, 2]
        stats = log.stats()
        assert stats["offered"] == 3
        assert stats["captured"] == 2

    def test_ring_evicts_oldest_first(self):
        log = SlowQueryLog(capacity=3)
        for qid in range(5):
            log.offer(_fake_trace(qid, 0.1))
        assert [e["query_id"] for e in log.to_dicts()] == [2, 3, 4]
        assert len(log) == 3
        log.clear()
        assert len(log) == 0

    def test_shard_io_attached(self):
        log = SlowQueryLog(capacity=2)
        shard_io = [
            SimpleNamespace(to_dict=lambda: {"sequential": 0, "random": 7})
        ]
        log.offer(_fake_trace(0, 0.1), shard_io=shard_io)
        assert log.to_dicts()[0]["shard_io"] == [
            {"sequential": 0, "random": 7}
        ]

    def test_rejects_bad_capacity(self):
        with pytest.raises(InvalidParameterError):
            SlowQueryLog(capacity=0)

    def test_wired_through_telemetry_record(self, obs_index):
        log = SlowQueryLog(capacity=8)
        telemetry = Telemetry(slowlog=log)
        index, queries = obs_index
        index.knn(queries[0], 5, p=0.8, telemetry=telemetry)
        assert len(log) == 1
        entry = log.to_dicts()[0]
        assert entry["trace"]["io"] == entry["io"]
        # The latency histogram saw the same query.
        hist = telemetry.registry.get("lazylsh_query_latency_seconds")
        assert hist.count() == 1


class TestExposition:
    """Satellite: strict Prometheus text format round trip."""

    def test_label_values_escaped_and_round_tripped(self):
        reg = MetricsRegistry()
        counter = reg.counter("odd_labels_total", "has odd labels")
        nasty = 'back\\slash "quote"\nnewline'
        counter.inc(2.0, name=nasty)
        text = reg.render_prometheus()
        assert '\\\\' in text and '\\"' in text and "\\n" in text
        samples = parse_prometheus_text(text)
        (labels, value), = samples["odd_labels_total"]
        assert labels["name"] == nasty
        assert value == 2.0

    def test_help_text_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "line one\nline two \\ slash").inc()
        text = reg.render_prometheus()
        help_lines = [
            ln for ln in text.splitlines() if ln.startswith("# HELP c_total")
        ]
        assert help_lines == [
            "# HELP c_total line one\\nline two \\\\ slash"
        ]

    def test_type_and_help_once_per_family_with_labeled_children(self):
        reg = MetricsRegistry()
        counter = reg.counter("sharded_total", "per-shard counter")
        for shard in range(4):
            counter.inc(1.0, shard=str(shard))
        hist = reg.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        hist.observe(0.05, route="a")
        hist.observe(5.0, route="b")
        text = reg.render_prometheus()
        lines = text.splitlines()
        for family in ("sharded_total", "lat_seconds"):
            assert (
                sum(ln.startswith(f"# TYPE {family} ") for ln in lines) == 1
            )
            assert (
                sum(ln.startswith(f"# HELP {family} ") for ln in lines) == 1
            )
        samples = parse_prometheus_text(text)
        assert len(samples["sharded_total"]) == 4
        # Histogram children expose cumulative buckets ending at +Inf.
        inf_buckets = [
            (labels, v)
            for labels, v in samples["lat_seconds_bucket"]
            if labels["le"] == "+Inf"
        ]
        assert len(inf_buckets) == 2

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("this is not prometheus\n")

    def test_histogram_quantile_interpolates(self):
        reg = MetricsRegistry()
        hist = reg.histogram(
            "h_seconds", "h", buckets=(0.01, 0.1, 1.0)
        )
        for _ in range(50):
            hist.observe(0.05)
        for _ in range(50):
            hist.observe(0.5)
        samples = parse_prometheus_text(reg.render_prometheus())
        p50 = histogram_quantile(samples["h_seconds_bucket"], 0.5)
        p99 = histogram_quantile(samples["h_seconds_bucket"], 0.99)
        assert 0.01 <= p50 <= 0.1
        assert 0.1 < p99 <= 1.0
        assert histogram_quantile([], 0.5) is None


class TestObsExporter:
    @pytest.fixture()
    def stack(self):
        reg = MetricsRegistry()
        reg.counter("up_total", "liveness").inc(3.0)
        log = SlowQueryLog(capacity=4)
        log.offer(_fake_trace(7, 0.25))
        state = {"healthy": True}
        exporter = ObsExporter(
            reg, health=lambda: dict(state), slowlog=log
        ).start()
        yield exporter, state
        exporter.stop()

    def _get(self, url):
        try:
            with urllib.request.urlopen(url, timeout=5) as fh:
                return fh.status, fh.headers.get("Content-Type"), fh.read()
        except urllib.error.HTTPError as err:
            return err.code, err.headers.get("Content-Type"), err.read()

    def test_metrics_endpoint(self, stack):
        exporter, _state = stack
        status, ctype, body = self._get(exporter.url + "/metrics")
        assert status == 200
        assert ctype.startswith("text/plain")
        samples = parse_prometheus_text(body.decode())
        assert samples["up_total"] == [({}, 3.0)]

    def test_healthz_flips_to_503(self, stack):
        exporter, state = stack
        status, _ctype, body = self._get(exporter.url + "/healthz")
        assert status == 200
        assert json.loads(body)["healthy"] is True
        state["healthy"] = False
        status, _ctype, body = self._get(exporter.url + "/healthz")
        assert status == 503
        assert json.loads(body)["healthy"] is False

    def test_slowlog_endpoint(self, stack):
        exporter, _state = stack
        status, ctype, body = self._get(exporter.url + "/slowlog")
        assert status == 200
        assert ctype.startswith("application/json")
        entries = json.loads(body)
        assert [e["query_id"] for e in entries] == [7]

    def test_unknown_path_404(self, stack):
        exporter, _state = stack
        status, _ctype, _body = self._get(exporter.url + "/nope")
        assert status == 404

    def test_context_manager_and_idempotent_start(self):
        reg = MetricsRegistry()
        with ObsExporter(reg) as exporter:
            assert exporter.start() is exporter  # second start is a no-op
            status, _ctype, _body = self._get(exporter.url + "/metrics")
            assert status == 200
        # Stopped: connecting must now fail.
        with pytest.raises(OSError):
            urllib.request.urlopen(exporter.url + "/metrics", timeout=1)


class TestGuaranteeAuditor:
    @pytest.fixture()
    def audited(self, obs_index):
        index, queries = obs_index
        auditor = GuaranteeAuditor(
            index, sample_rate=1.0, min_samples=1, background=False
        )
        return auditor, index, queries

    def test_correct_results_pass(self, audited):
        auditor, index, queries = audited
        for query in queries[:4]:
            result = index.knn(query, 5, p=0.8)
            assert auditor.observe(
                query, k=5, p=0.8, ids=result.ids,
                distances=result.distances,
            )
        summary = auditor.summary()
        assert summary["samples"] == 4
        assert summary["success_rate"] == 1.0
        assert summary["recall_at_k"] > 0.0
        assert summary["overall_ratio"] >= 1.0
        assert summary["alerts"] == 0
        assert summary["bound"] == pytest.approx(
            max(0.0, 0.5 - index.beta)
        )

    def test_violation_alerts_once_per_episode(self, audited, caplog):
        auditor, index, queries = audited
        query = queries[0]
        result = index.knn(query, 5, p=0.8)
        bogus = result.distances * 1e6  # breaks the c-approximation
        with caplog.at_level(logging.WARNING, logger="repro.obs.auditor"):
            auditor.observe(
                query, k=5, p=0.8, ids=result.ids, distances=bogus
            )
            auditor.observe(
                query, k=5, p=0.8, ids=result.ids, distances=bogus
            )
        summary = auditor.summary()
        assert summary["success_rate"] == 0.0
        assert summary["alerts"] == 1  # one episode, not one per sample
        assert any(
            "guarantee violation" in rec.message for rec in caplog.records
        )
        gauges = parse_prometheus_text(auditor.registry.render_prometheus())
        assert gauges["lazylsh_audit_success_rate"] == [({}, 0.0)]

    def test_sample_rate_zero_never_samples(self, audited):
        auditor, index, queries = audited
        auditor.sample_rate = 0.0
        result = index.knn(queries[0], 5, p=0.8)
        assert not auditor.observe(
            queries[0], k=5, p=0.8, ids=result.ids,
            distances=result.distances,
        )
        assert auditor.summary()["samples"] == 0

    def test_background_drain_and_close(self, obs_index):
        index, queries = obs_index
        with GuaranteeAuditor(index, sample_rate=1.0) as auditor:
            result = index.knn(queries[0], 5, p=0.8)
            auditor.observe(
                queries[0], k=5, p=0.8, ids=result.ids,
                distances=result.distances,
            )
            auditor.drain(timeout=30.0)
            assert auditor.summary()["samples"] == 1

    def test_tombstoned_rows_not_counted_as_truth(self, obs_index):
        index, queries = obs_index
        # Remove the exact nearest neighbours of query 0, then audit a
        # fresh result: the oracle must judge against surviving rows.
        result_before = index.knn(queries[0], 3, p=0.8)
        import copy

        pruned = copy.deepcopy(index)
        pruned.remove(result_before.ids)
        auditor = GuaranteeAuditor(
            pruned, sample_rate=1.0, min_samples=1, background=False
        )
        result = pruned.knn(queries[0], 3, p=0.8)
        auditor.observe(
            queries[0], k=3, p=0.8, ids=result.ids,
            distances=result.distances,
        )
        summary = auditor.summary()
        assert summary["samples"] == 1
        assert not np.intersect1d(result.ids, result_before.ids).size
        assert summary["success_rate"] == 1.0

    def test_rejects_bad_parameters(self, obs_index):
        index, _queries = obs_index
        with pytest.raises(InvalidParameterError):
            GuaranteeAuditor(index, sample_rate=1.5)
        with pytest.raises(InvalidParameterError):
            GuaranteeAuditor(index, window=0)
