"""Unit tests for repro.core.params (Section 3.3 parameter computation)."""

import numpy as np
import pytest

from repro.core.params import GapCurve, ParameterEngine
from repro.errors import InvalidParameterError, UnsupportedMetricError
from repro.metrics.collision import collision_probability_cauchy


@pytest.fixture(scope="module")
def engine_d128_c2() -> ParameterEngine:
    """The Figure 4/5/6 setting: d=128, c=2, eps=0.01, beta=1e-4."""
    return ParameterEngine(
        128, c=2.0, epsilon=0.01, beta=1e-4, mc_samples=40_000, mc_buckets=120, seed=1
    )


@pytest.fixture(scope="module")
def engine_small() -> ParameterEngine:
    return ParameterEngine(
        16, c=3.0, epsilon=0.05, beta=0.05, mc_samples=20_000, mc_buckets=60, seed=2
    )


class TestConstruction:
    def test_base_sensitivity(self):
        eng = ParameterEngine(8, c=3.0, r0=1.0)
        assert eng.p1 == pytest.approx(collision_probability_cauchy(1.0, 1.0))
        assert eng.p2 == pytest.approx(collision_probability_cauchy(3.0, 1.0))
        assert eng.p1 > eng.p2

    def test_z_formula(self):
        eng = ParameterEngine(8, epsilon=0.01, beta=1e-4)
        assert eng.z == pytest.approx(
            np.sqrt(np.log(2.0 / 1e-4) / np.log(1.0 / 0.01))
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"c": 1.0},
            {"epsilon": 0.0},
            {"beta": 1.5},
            {"r0": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(InvalidParameterError):
            ParameterEngine(8, **kwargs)

    def test_rejects_zero_dim(self):
        with pytest.raises(InvalidParameterError):
            ParameterEngine(0)


class TestCurve:
    def test_curve_shape(self, engine_small):
        curve = engine_small.curve(0.5)
        assert isinstance(curve, GapCurve)
        assert curve.radii.shape == curve.p1_prime.shape == curve.p2_prime.shape

    def test_ratio_starts_at_one(self, engine_small):
        curve = engine_small.curve(0.5)
        assert curve.ratio[0] == pytest.approx(1.0)

    def test_probabilities_in_unit_interval(self, engine_small):
        curve = engine_small.curve(0.5)
        for arr in (curve.p1_prime, curve.p2_prime):
            assert (arr >= 0).all() and (arr <= 1).all()

    def test_p2_prime_monotone_in_radius(self, engine_small):
        # p2' = p(c*delta_lower / r, r0) grows as the window widens.
        curve = engine_small.curve(0.5)
        assert (np.diff(curve.p2_prime) >= -1e-12).all()

    def test_p1_prime_bounded_by_base_p1(self, engine_small):
        curve = engine_small.curve(0.5)
        assert (curve.p1_prime <= engine_small.p1 + 1e-12).all()

    def test_p2_prime_at_least_base_p2(self, engine_small):
        curve = engine_small.curve(0.5)
        assert (curve.p2_prime >= engine_small.p2 - 1e-12).all()

    def test_degenerate_p1_equals_base(self, engine_small):
        curve = engine_small.curve(1.0)
        np.testing.assert_allclose(curve.p1_prime, engine_small.p1, rtol=1e-9)
        np.testing.assert_allclose(curve.p2_prime, engine_small.p2, rtol=1e-9)

    def test_rho_infinite_where_invalid(self, engine_small):
        curve = engine_small.curve(0.5)
        rho = curve.rho
        assert rho.shape == curve.radii.shape
        assert (rho[np.isfinite(rho)] > 0).all()


class TestMetricParams:
    def test_degenerate_metric_matches_c2lsh_lemma1(self, engine_small):
        params = engine_small.metric_params(1.0)
        z = engine_small.z
        gap = engine_small.p1 - engine_small.p2
        eta_expected = int(
            np.ceil(np.log(1.0 / 0.05) / (2.0 * gap**2) * (1.0 + z) ** 2)
        )
        assert params.eta == eta_expected
        assert params.theta == pytest.approx(
            (z * engine_small.p1 + engine_small.p2) / (1.0 + z) * params.eta
        )
        assert params.r_hat == pytest.approx(1.0)

    def test_theta_below_eta(self, engine_small):
        for p in (0.6, 0.8, 1.0):
            params = engine_small.metric_params(p)
            assert 0 < params.theta < params.eta

    def test_gap_positive_for_supported(self, engine_small):
        assert engine_small.metric_params(0.7).gap > 0

    def test_caching_returns_same_object(self, engine_small):
        assert engine_small.metric_params(0.8) is engine_small.metric_params(0.8)

    def test_rho_objective_differs(self, engine_d128_c2):
        gap_params = engine_d128_c2.metric_params(0.5, objective="gap")
        rho_params = engine_d128_c2.metric_params(0.5, objective="rho")
        # Both valid, both locality-sensitive; radii generally differ.
        assert gap_params.gap > 0
        assert rho_params.gap > 0

    def test_invalid_objective(self, engine_small):
        with pytest.raises(InvalidParameterError):
            engine_small.metric_params(0.7, objective="banana")


class TestPaperNumbers:
    """Quantitative checks against the paper's reported curves."""

    def test_eta_figure6_scale(self, engine_d128_c2):
        # Figure 6 (d=128, c=2): eta_0.5 lands in the 10k-14k range and
        # eta_1.0 well under 1000.
        eta_half = engine_d128_c2.metric_params(0.5).eta
        eta_one = engine_d128_c2.metric_params(1.0).eta
        assert 8_000 < eta_half < 16_000
        assert eta_one < 1_000

    def test_eta_monotone_decreasing_in_p_below_one(self, engine_d128_c2):
        etas = [
            engine_d128_c2.metric_params(p).eta for p in (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
        ]
        assert all(a >= b for a, b in zip(etas, etas[1:]))

    def test_unsupported_below_044(self, engine_d128_c2):
        # Figure 5: for p < ~0.44 the l1 hash is no longer sensitive.
        assert not engine_d128_c2.is_supported(0.35)

    def test_supported_slightly_above_one(self, engine_d128_c2):
        # Figure 5: sensitivity persists up to p ~ 1.18.
        assert engine_d128_c2.is_supported(1.1)

    def test_unsupported_far_above_one(self, engine_d128_c2):
        assert not engine_d128_c2.is_supported(1.4)

    def test_optimal_ratio_position_figure4(self, engine_d128_c2):
        # Figure 4: the gap-maximising radius sits around ratio 1.5-1.9.
        params = engine_d128_c2.metric_params(0.5)
        lower = 128.0 ** (1.0 - 1.0 / 0.5)
        ratio = params.r_hat / lower
        assert 1.3 < ratio < 2.0

    def test_table4_eta_with_c3(self):
        # Table 4 (c=3): eta_0.5 for d=128 is ~1358; allow MC tolerance.
        eng = ParameterEngine(
            128, c=3.0, epsilon=0.01, beta=1e-4, mc_samples=40_000, mc_buckets=120, seed=1
        )
        eta = eng.metric_params(0.5).eta
        assert 1_000 < eta < 1_800


class TestUnsupportedMetric:
    def test_raises_with_informative_message(self, engine_d128_c2):
        with pytest.raises(UnsupportedMetricError) as exc_info:
            engine_d128_c2.metric_params(0.3)
        assert "not locality-sensitive" in str(exc_info.value)

    def test_is_supported_false_instead_of_raise(self, engine_d128_c2):
        assert engine_d128_c2.is_supported(0.3) is False


class TestThetaForEta:
    def test_scales_linearly(self, engine_small):
        params = engine_small.metric_params(0.8)
        half = engine_small.theta_for_eta(0.8, params.eta // 2)
        full = engine_small.theta_for_eta(0.8, params.eta)
        assert full == pytest.approx(params.theta)
        assert half == pytest.approx(params.theta * (params.eta // 2) / params.eta)


class TestSupportedUpperP:
    def test_budget_extends_range(self, engine_small):
        eta_05 = engine_small.metric_params(0.5).eta
        upper = engine_small.supported_upper_p(eta_05)
        # Materialising eta_0.5 functions serves at least up to p = 1.
        assert upper >= 1.0
