"""Cross-cutting tests of the Section 5.2 I/O cost model.

The evaluation's headline numbers are simulated I/O counts, so the
accounting itself deserves direct tests: page-granular sequential
charging, buffer-pool semantics within a query, and the relationships
the paper's figures depend on.
"""

import numpy as np
import pytest

from repro import LazyLSH, LazyLSHConfig
from repro.datasets import make_synthetic, sample_queries
from repro.storage.inverted_index import InvertedListStore
from repro.storage.io_stats import IOStats
from repro.storage.pages import PageLayout


@pytest.fixture(scope="module")
def io_setup():
    data = make_synthetic(1000, 10, value_range=(0, 300), seed=111)
    split = sample_queries(data, n_queries=3, seed=112)
    cfg = LazyLSHConfig(
        c=3.0, p_min=0.8, seed=113, mc_samples=10_000, mc_buckets=60
    )
    return LazyLSH(cfg).build(split.data), split


class TestPageGranularity:
    def test_sequential_io_bounded_by_store_pages(self, io_setup):
        # A query can never charge more unique sequential pages than the
        # whole store holds (per-query buffer pool dedupes re-reads).
        index, split = io_setup
        layout = index.store.layout
        pages_per_function = -(-index.store.num_points // layout.entries_per_page)
        max_pages = index.eta * pages_per_function
        result = index.knn(split.queries[0], 10, p=1.0)
        assert result.io.sequential <= max_pages

    def test_larger_page_size_means_fewer_ios(self):
        data = make_synthetic(2000, 8, value_range=(0, 300), seed=114)
        split = sample_queries(data, n_queries=2, seed=115)
        small = LazyLSH(
            LazyLSHConfig(
                c=3.0, p_min=1.0, seed=1, page_size=1024,
                mc_samples=10_000, mc_buckets=60,
            )
        ).build(split.data)
        large = LazyLSH(
            LazyLSHConfig(
                c=3.0, p_min=1.0, seed=1, page_size=16384,
                mc_samples=10_000, mc_buckets=60,
            )
        ).build(split.data)
        io_small = small.knn(split.queries[0], 5, p=1.0).io.sequential
        io_large = large.knn(split.queries[0], 5, p=1.0).io.sequential
        assert io_large < io_small

    def test_index_size_scales_with_entry_size(self):
        hash_values = np.zeros((4, 1000), dtype=np.int64)
        thin = InvertedListStore(hash_values, PageLayout(entry_size=4))
        fat = InvertedListStore(hash_values, PageLayout(entry_size=16))
        assert fat.size_bytes() > thin.size_bytes()


class TestBufferPoolSemantics:
    def test_window_reread_within_query_free(self):
        hash_values = np.arange(1000, dtype=np.int64)[None, :]
        store = InvertedListStore(hash_values)
        stats = IOStats()
        pool: set = set()
        store.read_window(0, 0, 400, stats, pool)
        first = stats.sequential
        store.read_window(0, 100, 300, stats, pool)  # fully cached
        assert stats.sequential == first

    def test_distinct_queries_do_not_share_cache(self, io_setup):
        index, split = io_setup
        a = index.knn(split.queries[0], 5, p=1.0)
        b = index.knn(split.queries[0], 5, p=1.0)
        # Same query re-run pays full price again: the pool is per-query.
        assert b.io.sequential == a.io.sequential


class TestFigureRelationships:
    def test_fractional_query_costs_more(self, io_setup):
        # The Figure 9 relationship on a fresh small index.
        index, split = io_setup
        io_low = np.mean(
            [index.knn(q, 10, p=0.8).io.total for q in split.queries]
        )
        io_base = np.mean(
            [index.knn(q, 10, p=1.0).io.total for q in split.queries]
        )
        assert io_low > io_base

    def test_eta_subset_used_per_metric(self, io_setup):
        # Metrics closer to the base consult fewer hash functions, which
        # is why their sequential I/O is lower.
        index, _split = io_setup
        assert index.metric_params(1.0).eta < index.metric_params(0.8).eta
