"""Contract tests on the public API surface.

These guard the things a downstream adopter depends on: everything in
``__all__`` is importable and documented, results are plain numpy/python
types, and the version string is sane.
"""

import importlib
import inspect

import numpy as np
import pytest

import repro
import repro.apps
import repro.baselines
import repro.core
import repro.datasets
import repro.eval
import repro.metrics
import repro.storage

_PACKAGES = [
    repro,
    repro.apps,
    repro.baselines,
    repro.core,
    repro.datasets,
    repro.eval,
    repro.metrics,
    repro.storage,
]


class TestExports:
    @pytest.mark.parametrize("package", _PACKAGES, ids=lambda m: m.__name__)
    def test_all_entries_resolve(self, package):
        for name in getattr(package, "__all__", []):
            assert hasattr(package, name), f"{package.__name__}.{name} missing"

    @pytest.mark.parametrize("package", _PACKAGES, ids=lambda m: m.__name__)
    def test_all_sorted_for_readability(self, package):
        names = list(getattr(package, "__all__", []))
        assert names == sorted(names)

    def test_version(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    @pytest.mark.parametrize("package", _PACKAGES, ids=lambda m: m.__name__)
    def test_public_classes_documented(self, package):
        for name in getattr(package, "__all__", []):
            obj = getattr(package, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{package.__name__}.{name} lacks a docstring"


class TestPublicModulesDocumented:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.core.lazylsh",
            "repro.core.params",
            "repro.core.hashing",
            "repro.core.montecarlo",
            "repro.core.multiquery",
            "repro.metrics.lp",
            "repro.metrics.stable",
            "repro.metrics.collision",
            "repro.metrics.sampling",
            "repro.metrics.families",
            "repro.storage.inverted_index",
            "repro.storage.pages",
            "repro.storage.io_stats",
            "repro.baselines.c2lsh",
            "repro.baselines.e2lsh",
            "repro.baselines.srs",
            "repro.baselines.multiprobe",
            "repro.baselines.lsb",
            "repro.baselines.linear_scan",
            "repro.persistence",
            "repro.cli",
        ],
    )
    def test_module_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__) > 40


class TestResultTypes:
    def test_knn_result_types(self, built_index, small_split):
        result = built_index.knn(small_split.queries[0], 3, p=1.0)
        assert result.ids.dtype == np.int64
        assert result.distances.dtype == np.float64
        assert isinstance(result.io.sequential, int)
        assert isinstance(result.candidates, int)

    def test_metric_params_are_floats_and_ints(self, built_index):
        params = built_index.metric_params(0.8)
        assert isinstance(params.eta, int)
        assert isinstance(params.theta, float)
        assert isinstance(params.r_hat, float)

    def test_supported_metrics_plain_floats(self, built_index):
        for p in built_index.supported_metrics():
            assert isinstance(p, float)
