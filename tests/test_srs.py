"""Tests for the SRS baseline."""

import numpy as np
import pytest

from repro.baselines import SRS
from repro.baselines.srs import SRSConfig
from repro.datasets import exact_knn, make_synthetic, sample_queries
from repro.errors import IndexNotBuiltError, InvalidParameterError


@pytest.fixture(scope="module")
def srs_split():
    data = make_synthetic(1000, 20, value_range=(0, 300), seed=13)
    return sample_queries(data, n_queries=4, seed=14)


@pytest.fixture(scope="module")
def srs(srs_split) -> SRS:
    return SRS(SRSConfig(seed=2)).build(srs_split.data)


class TestBuild:
    def test_projected_shape(self, srs, srs_split):
        assert srs._projected.shape == (srs_split.data.shape[0], 6)

    def test_tiny_index(self, srs):
        # SRS's selling point: the index is tiny (6 floats + id per point).
        assert srs.index_size_mb() < 0.1

    def test_query_before_build(self):
        with pytest.raises(IndexNotBuiltError):
            SRS().knn(np.zeros(4), 1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_projections": 0},
            {"c": 1.0},
            {"max_fraction": 0.0},
            {"max_fraction": 1.5},
            {"early_stop_confidence": 1.0},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(InvalidParameterError):
            SRS(SRSConfig(**kwargs))


class TestQueries:
    def test_result_sorted_by_lp(self, srs, srs_split):
        result = srs.knn(srs_split.queries[0], 10, p=2.0)
        assert (np.diff(result.distances) >= 0).all()

    def test_l2_quality(self, srs, srs_split):
        _, true_dists = exact_knn(srs_split.data, srs_split.queries, 10, 2.0)
        for qi, query in enumerate(srs_split.queries):
            result = srs.knn(query, 10, p=2.0)
            # 2-stable projections make l2 recall strong.
            assert result.distances[0] <= true_dists[qi][0] * 2.0

    def test_early_stop_bounds_candidates(self, srs, srs_split):
        result = srs.knn(srs_split.queries[1], 5, p=2.0)
        assert result.candidates <= srs.num_points
        if result.stopped_early:
            assert result.candidates < srs.num_points

    def test_budget_respected(self, srs_split):
        srs = SRS(SRSConfig(max_fraction=0.02, early_stop_confidence=0.999, seed=2))
        srs.build(srs_split.data)
        result = srs.knn(srs_split.queries[0], 5, p=2.0)
        assert result.candidates <= max(5, int(np.ceil(0.02 * srs.num_points)))

    def test_fractional_rerank(self, srs, srs_split):
        from repro.metrics.lp import lp_distance

        query = srs_split.queries[2]
        result = srs.knn(query, 5, p=0.5)
        recomputed = lp_distance(srs_split.data[result.ids], query, 0.5)
        np.testing.assert_allclose(result.distances, recomputed)

    def test_random_io_per_candidate(self, srs, srs_split):
        result = srs.knn(srs_split.queries[3], 5, p=2.0)
        assert result.io.random == result.candidates

    def test_self_query(self, srs, srs_split):
        point = srs_split.data[7]
        result = srs.knn(point, 1, p=2.0)
        assert result.ids[0] == 7
        assert result.distances[0] == pytest.approx(0.0)

    def test_k_validation(self, srs, srs_split):
        with pytest.raises(InvalidParameterError):
            srs.knn(srs_split.queries[0], 0, p=2.0)


class TestProjectionStatistics:
    def test_chi_squared_scaling(self):
        # ||A x||^2 / ||x||^2 ~ chi^2_m (mean m).  A high dimensionality
        # keeps the per-realisation variance of the fixed projection
        # matrix small enough for a tight check.
        d = 200
        data = make_synthetic(50, d, seed=1)
        srs = SRS(SRSConfig(seed=5)).build(data)
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2000, d))
        proj = x @ srs._projection
        ratios = (proj**2).sum(axis=1) / (x**2).sum(axis=1)
        assert ratios.mean() == pytest.approx(6.0, rel=0.1)
