"""Tests for the E2LSH baseline."""

import numpy as np
import pytest

from repro.baselines import E2LSH
from repro.baselines.e2lsh import E2LSHConfig
from repro.datasets import exact_knn, make_synthetic, sample_queries
from repro.errors import IndexNotBuiltError, InvalidParameterError


@pytest.fixture(scope="module")
def e2_split():
    data = make_synthetic(800, 12, value_range=(0, 200), seed=9)
    return sample_queries(data, n_queries=3, seed=10)


@pytest.fixture(scope="module")
def e2(e2_split) -> E2LSH:
    return E2LSH(E2LSHConfig(c=2.0, seed=3)).build(e2_split.data)


class TestBuild:
    def test_derived_parameters(self, e2):
        assert e2.m >= 1
        assert 1 <= e2.num_tables <= 64

    def test_explicit_parameters_respected(self, e2_split):
        cfg = E2LSHConfig(m=4, num_tables=10, seed=1)
        index = E2LSH(cfg).build(e2_split.data)
        assert index.m == 4
        assert index.num_tables == 10

    def test_lazy_levels(self, e2_split):
        index = E2LSH(E2LSHConfig(seed=2)).build(e2_split.data)
        assert index.num_levels == 0
        assert index.index_size_mb() == 0.0
        index.knn(e2_split.queries[0], 5)
        assert index.num_levels >= 1
        assert index.index_size_mb() > 0.0

    def test_index_grows_per_level(self, e2_split):
        # The storage weakness the paper highlights: every radius level
        # adds a full set of tables.
        index = E2LSH(E2LSHConfig(seed=2)).build(e2_split.data)
        index.knn(e2_split.queries[0], 5)
        size_one = index.index_size_mb()
        levels_one = index.num_levels
        index.knn(e2_split.queries[1], 50)
        if index.num_levels > levels_one:
            assert index.index_size_mb() > size_one

    def test_query_before_build(self):
        with pytest.raises(IndexNotBuiltError):
            E2LSH().knn(np.zeros(4), 1)

    def test_bad_config(self):
        with pytest.raises(InvalidParameterError):
            E2LSH(E2LSHConfig(c=1.0))


class TestQueries:
    def test_finds_k_results(self, e2, e2_split):
        result = e2.knn(e2_split.queries[0], 10)
        assert result.ids.shape == (10,)
        assert (np.diff(result.distances) >= 0).all()

    def test_quality_reasonable(self, e2, e2_split):
        # Not the guarantee test (probabilistic) — just that the returned
        # neighbours are far closer than random points.
        _, true_dists = exact_knn(e2_split.data, e2_split.queries, 10, 2.0)
        for qi, query in enumerate(e2_split.queries):
            result = e2.knn(query, 10)
            assert result.distances[0] <= true_dists[qi][0] * 3.0

    def test_fractional_rerank(self, e2, e2_split):
        from repro.metrics.lp import lp_distance

        query = e2_split.queries[1]
        result = e2.knn(query, 5, p=0.5)
        recomputed = lp_distance(e2_split.data[result.ids], query, 0.5)
        np.testing.assert_allclose(result.distances, recomputed)

    def test_io_counted(self, e2, e2_split):
        result = e2.knn(e2_split.queries[2], 5)
        assert result.io.random > 0
        assert result.levels >= 1

    def test_k_validation(self, e2, e2_split):
        with pytest.raises(InvalidParameterError):
            e2.knn(e2_split.queries[0], 0)

    def test_self_query(self, e2, e2_split):
        point = e2_split.data[5]
        result = e2.knn(point, 1)
        assert result.distances[0] == pytest.approx(0.0)
        assert result.ids[0] == 5
