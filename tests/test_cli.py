"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParams:
    def test_prints_table(self, capsys):
        rc = main(
            [
                "params",
                "--d", "16",
                "--c", "3",
                "--p", "0.7,1.0",
                "--mc-samples", "5000",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "eta_p" in out
        assert "0.7" in out

    def test_unsupported_metric_marked(self, capsys):
        rc = main(
            [
                "params",
                "--d", "128",
                "--c", "2",
                "--p", "0.3",
                "--mc-samples", "5000",
            ]
        )
        assert rc == 0
        assert "not sensitive" in capsys.readouterr().out


class TestBuildAndQuery:
    def test_build_synthetic_and_query(self, capsys, tmp_path):
        index_path = tmp_path / "idx.npz"
        rc = main(
            [
                "build",
                "synthetic:300x8",
                str(index_path),
                "--mc-samples", "5000",
                "--seed", "3",
            ]
        )
        assert rc == 0
        assert index_path.exists()
        out = capsys.readouterr().out
        assert "built index over 300 x 8" in out

        rc = main(
            ["query", str(index_path), "--k", "5", "--p", "0.7,1.0", "--row", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "kNN results" in out
        # The query row must find itself at distance 0 in both metrics.
        assert out.count("0.0") >= 2

    def test_build_from_npy(self, tmp_path, capsys):
        data_path = tmp_path / "data.npy"
        np.save(data_path, np.random.default_rng(1).uniform(0, 100, (200, 6)))
        rc = main(
            [
                "build",
                str(data_path),
                str(tmp_path / "idx"),
                "--mc-samples", "5000",
            ]
        )
        assert rc == 0
        assert (tmp_path / "idx.npz").exists()

    def test_query_with_external_file(self, tmp_path, capsys):
        rc = main(
            [
                "build",
                "synthetic:200x6",
                str(tmp_path / "idx.npz"),
                "--mc-samples", "5000",
            ]
        )
        assert rc == 0
        queries = np.random.default_rng(2).uniform(0, 10000, (2, 6))
        qpath = tmp_path / "queries.npy"
        np.save(qpath, queries)
        rc = main(
            [
                "query",
                str(tmp_path / "idx.npz"),
                "--query-file", str(qpath),
                "--p", "1.0",
            ]
        )
        assert rc == 0


class TestTraceAndStats:
    @pytest.fixture
    def index_path(self, tmp_path):
        path = tmp_path / "idx.npz"
        rc = main(
            [
                "build",
                "synthetic:300x8",
                str(path),
                "--mc-samples", "5000",
                "--seed", "3",
            ]
        )
        assert rc == 0
        return path

    def test_trace_writes_valid_jsonl(self, capsys, tmp_path, index_path):
        from repro.obs import load_traces_jsonl

        out = tmp_path / "traces.jsonl"
        spans = tmp_path / "spans.jsonl"
        rc = main(
            [
                "trace",
                str(index_path),
                "--k", "5",
                "--p", "0.5,1.0",
                "--row", "2",
                "--output", str(out),
                "--spans", str(spans),
            ]
        )
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "traced 1 queries (2 traces)" in stdout
        assert '"queries": 2' in stdout  # summary counts traces: 1 row x 2 metrics
        traces = load_traces_jsonl(out)  # validates each record
        assert sorted(t.p for t in traces) == [0.5, 1.0]
        assert all(t.termination for t in traces)
        assert spans.exists()
        assert "cli.workload" in spans.read_text()

    def test_trace_scalar_engine(self, capsys, tmp_path, index_path):
        from repro.obs import load_traces_jsonl

        out = tmp_path / "traces.jsonl"
        rc = main(
            [
                "trace",
                str(index_path),
                "--p", "1.0",
                "--engine", "scalar",
                "--output", str(out),
            ]
        )
        assert rc == 0
        assert load_traces_jsonl(out)[0].engine == "scalar"

    def test_stats_prometheus_output(self, capsys, index_path):
        rc = main(["stats", str(index_path), "--p", "0.5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# TYPE lazylsh_queries_total counter" in out
        assert 'lazylsh_queries_total{engine="flat",p="0.5"} 1' in out
        assert "lazylsh_store_searches_total" in out

    def test_stats_json_output(self, capsys, index_path):
        import json

        capsys.readouterr()  # drop the fixture's build output
        rc = main(["stats", str(index_path), "--format", "json"])
        assert rc == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["lazylsh_queries_total"]["type"] == "counter"
        assert snapshot["lazylsh_query_rounds"]["type"] == "histogram"


class TestOpsCli:
    @pytest.fixture
    def index_path(self, tmp_path):
        path = tmp_path / "idx.npz"
        rc = main(
            [
                "build",
                "synthetic:300x8",
                str(path),
                "--mc-samples", "5000",
                "--seed", "3",
            ]
        )
        assert rc == 0
        return path

    def test_stats_shards_prints_breakdown_table(self, capsys, index_path):
        rc = main(["stats", str(index_path), "--shards", "2", "--p", "0.8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-shard random I/O" in out
        assert 'lazylsh_shard_rows_scanned_total{shard="0"}' in out
        assert 'lazylsh_shard_rows_scanned_total{shard="1"}' in out

    def test_stats_shards_json_breakdown(self, capsys, index_path):
        import json

        capsys.readouterr()  # drop the fixture's build output
        rc = main(
            [
                "stats", str(index_path),
                "--shards", "2",
                "--format", "json",
                "--p", "0.8",
            ]
        )
        assert rc == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["shard_io"]
        for per_query in snapshot["shard_io"]:
            assert len(per_query) == 2
            assert all(io["sequential"] == 0 for io in per_query)

    def test_serve_with_ops_plane_reports_audit(self, capsys, index_path):
        import json

        capsys.readouterr()
        rc = main(
            [
                "serve", str(index_path),
                "--k", "5",
                "--p", "0.8",
                "--shards", "2",
                "--metrics-port", "0",
                "--audit-rate", "1.0",
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "/metrics" in captured.err  # endpoint URL announced
        report = json.loads(captured.out)
        audit = report["audit"]
        assert audit["samples"] == len(report["results"])
        assert audit["success_rate"] >= audit["bound"]

    def test_top_renders_fleet_view(self, capsys, index_path):
        from repro import Telemetry
        from repro.obs import ObsExporter
        from repro.persistence import load_index
        from repro.serve import ShardedSearchService

        index = load_index(index_path)
        telemetry = Telemetry()
        with ShardedSearchService(
            index, n_shards=2, telemetry=telemetry
        ) as svc:
            svc.search_batch(index.data[:3], 5, p=0.8)
            with ObsExporter(
                telemetry.registry, health=svc.health
            ) as exporter:
                capsys.readouterr()
                rc = main(
                    [
                        "top",
                        "--url", exporter.url,
                        "--iterations", "2",
                        "--interval", "0.01",
                        "--no-clear",
                    ]
                )
        assert rc == 0
        out = capsys.readouterr().out
        assert "lazylsh top — healthy" in out
        assert "per-shard fleet" in out
        assert out.count("queries 3") == 2  # both polls rendered

    def test_top_unreachable_url_errors(self, capsys):
        rc = main(
            ["top", "--url", "http://127.0.0.1:9", "--iterations", "1"]
        )
        assert rc == 2
        assert "cannot scrape" in capsys.readouterr().err


class TestDurabilityCommands:
    def _init_home(self, tmp_path):
        home = tmp_path / "home"
        rc = main(
            [
                "ingest", str(home),
                "--init", "synthetic:250x8",
                "--insert", "synthetic:4x8",
                "--batches", "2",
                "--jitter", "0.1",
                "--mc-samples", "5000",
                "--seed", "3",
                "--no-fsync",
            ]
        )
        assert rc == 0
        return home

    def test_ingest_init_then_update(self, capsys, tmp_path):
        import json

        home = self._init_home(tmp_path)
        report = json.loads(capsys.readouterr().out)
        assert report["initialized"] is True
        assert report["lsn_after"] == 2
        assert report["live_points"] == 258
        rc = main(["ingest", str(home), "--remove", "3,9", "--no-fsync"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["initialized"] is False
        assert report["recovery"]["replayed_records"] == 2
        assert report["lsn_after"] == 3
        assert report["live_points"] == 256

    def test_recover_verify_and_checkpoint(self, capsys, tmp_path):
        import json

        home = self._init_home(tmp_path)
        capsys.readouterr()
        rc = main(["recover", str(home), "--verify", "--checkpoint"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["verified"] is True
        assert report["recovery"]["last_lsn"] == 2
        assert "checkpoint-00000000000000000002" in report["checkpoint"]

    def test_serve_wal_applies_log(self, capsys, tmp_path):
        import json

        home = self._init_home(tmp_path)
        capsys.readouterr()
        rc = main(
            ["serve", "--wal", str(home), "--k", "3", "--shards", "2"]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "applied 2 WAL records" in captured.err
        report = json.loads(captured.out)
        assert report["service"]["acked_lsn"] == 2
        assert report["service"]["epoch"] == 2

    def test_serve_requires_index_or_wal(self, capsys):
        rc = main(["serve"])
        assert rc == 2
        assert "index path or --wal" in capsys.readouterr().err

    def test_recover_without_home_errors(self, capsys, tmp_path):
        rc = main(["recover", str(tmp_path / "missing")])
        assert rc == 2
        assert "nothing to recover" in capsys.readouterr().err


class TestErrors:
    def test_unknown_dataset(self, capsys, tmp_path):
        rc = main(["build", "imagenet", str(tmp_path / "x.npz")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_datasets_listing(self, capsys):
        rc = main(["datasets"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "inria" in out
        assert "synthetic:<n>x<d>" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
