"""Unit tests for repro.storage.pages: block-layout arithmetic."""

import pytest

from repro.errors import InvalidParameterError
from repro.storage.pages import DEFAULT_ENTRY_SIZE, DEFAULT_PAGE_SIZE, PageLayout


class TestDefaults:
    def test_paper_page_size(self):
        assert DEFAULT_PAGE_SIZE == 4096

    def test_entry_size(self):
        assert DEFAULT_ENTRY_SIZE == 8

    def test_entries_per_page(self):
        assert PageLayout().entries_per_page == 512


class TestValidation:
    def test_rejects_zero_page(self):
        with pytest.raises(InvalidParameterError):
            PageLayout(page_size=0)

    def test_rejects_entry_larger_than_page(self):
        with pytest.raises(InvalidParameterError):
            PageLayout(page_size=16, entry_size=32)

    def test_rejects_negative_entry(self):
        with pytest.raises(InvalidParameterError):
            PageLayout(entry_size=-1)


class TestPageArithmetic:
    def test_page_of_entry(self):
        layout = PageLayout(page_size=64, entry_size=8)  # 8 entries/page
        assert layout.page_of_entry(0) == 0
        assert layout.page_of_entry(7) == 0
        assert layout.page_of_entry(8) == 1
        assert layout.page_of_entry(23) == 2

    def test_page_of_negative_entry_rejected(self):
        with pytest.raises(InvalidParameterError):
            PageLayout().page_of_entry(-1)

    def test_pages_for_range_empty(self):
        assert PageLayout().pages_for_range(100, 100) == 0

    def test_pages_for_range_within_one_page(self):
        layout = PageLayout(page_size=64, entry_size=8)
        assert layout.pages_for_range(0, 8) == 1
        assert layout.pages_for_range(3, 6) == 1

    def test_pages_for_range_spanning(self):
        layout = PageLayout(page_size=64, entry_size=8)
        assert layout.pages_for_range(6, 10) == 2
        assert layout.pages_for_range(0, 17) == 3

    def test_pages_for_range_invalid(self):
        with pytest.raises(InvalidParameterError):
            PageLayout().pages_for_range(5, 4)
        with pytest.raises(InvalidParameterError):
            PageLayout().pages_for_range(-1, 4)

    def test_page_span(self):
        layout = PageLayout(page_size=64, entry_size=8)
        assert layout.page_span(6, 10) == (0, 2)
        assert layout.page_span(8, 16) == (1, 2)
        assert layout.page_span(5, 5) == (0, 0)

    def test_span_count_consistency(self):
        layout = PageLayout(page_size=64, entry_size=8)
        for start, stop in [(0, 1), (0, 8), (3, 29), (64, 65), (7, 9)]:
            first, last_plus = layout.page_span(start, stop)
            assert last_plus - first == layout.pages_for_range(start, stop)

    def test_pages_for_bytes(self):
        layout = PageLayout(page_size=4096)
        assert layout.pages_for_bytes(0) == 0
        assert layout.pages_for_bytes(1) == 1
        assert layout.pages_for_bytes(4096) == 1
        assert layout.pages_for_bytes(4097) == 2

    def test_pages_for_bytes_negative(self):
        with pytest.raises(InvalidParameterError):
            PageLayout().pages_for_bytes(-1)

    def test_size_bytes_page_aligned(self):
        layout = PageLayout(page_size=4096, entry_size=8)
        assert layout.size_bytes(512) == 4096
        assert layout.size_bytes(513) == 8192
        assert layout.size_bytes(0) == 0
