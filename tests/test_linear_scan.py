"""Tests for the exact linear-scan baseline."""

import numpy as np
import pytest

from repro.baselines import LinearScan
from repro.datasets import make_synthetic
from repro.errors import InvalidParameterError
from repro.metrics.lp import lp_distance


@pytest.fixture(scope="module")
def scan() -> LinearScan:
    data = make_synthetic(300, 12, value_range=(0, 100), seed=8)
    return LinearScan(data)


class TestExactness:
    def test_matches_bruteforce(self, scan):
        query = np.full(12, 50.0)
        for p in (0.5, 1.0, 2.0):
            result = scan.knn(query, 5, p=p)
            dists = lp_distance(scan._data, query, p)
            want = np.sort(dists)[:5]
            np.testing.assert_allclose(result.distances, want)

    def test_sorted_output(self, scan):
        result = scan.knn(np.zeros(12), 20, p=0.7)
        assert (np.diff(result.distances) >= 0).all()

    def test_self_query_returns_self_first(self, scan):
        result = scan.knn(scan._data[42], 3, p=1.0)
        assert result.ids[0] == 42
        assert result.distances[0] == 0.0

    def test_k_equals_n(self, scan):
        result = scan.knn(np.zeros(12), 300, p=1.0)
        assert sorted(result.ids.tolist()) == list(range(300))


class TestCostModel:
    def test_scan_cost_is_full_file(self, scan):
        # 300 points x 12 dims x 4 bytes = 14400 bytes -> 4 pages.
        assert scan.scan_cost_pages() == 4

    def test_every_query_pays_full_scan(self, scan):
        r1 = scan.knn(np.zeros(12), 1, p=1.0)
        r2 = scan.knn(np.zeros(12), 100, p=0.5)
        assert r1.io.sequential == r2.io.sequential == scan.scan_cost_pages()
        assert r1.io.random == 0

    def test_global_counter(self):
        data = make_synthetic(100, 4, seed=1)
        scan = LinearScan(data)
        scan.knn(np.zeros(4), 1, p=1.0)
        scan.knn(np.zeros(4), 1, p=1.0)
        assert scan.io_stats.sequential == 2 * scan.scan_cost_pages()


class TestValidation:
    def test_bad_data(self):
        with pytest.raises(InvalidParameterError):
            LinearScan(np.zeros(5))

    def test_bad_k(self, scan):
        with pytest.raises(InvalidParameterError):
            scan.knn(np.zeros(12), 0, p=1.0)
        with pytest.raises(InvalidParameterError):
            scan.knn(np.zeros(12), 301, p=1.0)

    def test_bad_query_shape(self, scan):
        with pytest.raises(InvalidParameterError):
            scan.knn(np.zeros(5), 1, p=1.0)

    def test_properties(self, scan):
        assert scan.num_points == 300
        assert scan.dimensionality == 12


class TestBatch:
    def test_batch_matches_singles(self, scan):
        queries = np.vstack([np.zeros(12), np.full(12, 100.0)])
        batch = scan.knn_batch(queries, 3, p=1.0)
        assert len(batch) == 2
        for q, res in zip(queries, batch):
            single = scan.knn(q, 3, p=1.0)
            np.testing.assert_array_equal(res.ids, single.ids)
