"""Tests for the sharded query service (repro.serve).

The load-bearing property is *bit-identity*: the service must return
exactly the ids, distances, termination, round count and simulated
sequential/random I/O of the single-process flat engine, for every
metric and rehashing mode, because the paper's evaluation measures
those numbers.
"""

import json

import numpy as np
import pytest

from repro import LazyLSH, SearchRequest, Telemetry
from repro.errors import (
    IndexNotBuiltError,
    InvalidParameterError,
    ReproError,
)
from repro.obs import TraceContext, TraceStore, parse_prometheus_text
from repro.obs.query_trace import validate_trace_dict
from repro.persistence import load_index, save_index
from repro.serve import ShardedSearchService, plan_shards


@pytest.fixture(scope="module")
def service(built_index):
    """One three-shard service over the shared small index."""
    with ShardedSearchService(built_index, n_shards=3) as svc:
        yield svc


def _assert_identical(flat, sharded):
    np.testing.assert_array_equal(flat.ids, sharded.ids)
    np.testing.assert_array_equal(flat.distances, sharded.distances)
    assert flat.io.sequential == sharded.io.sequential
    assert flat.io.random == sharded.io.random
    assert flat.termination == sharded.termination
    assert flat.rounds == sharded.rounds
    assert flat.candidates == sharded.candidates


class TestPlanShards:
    def test_covers_and_balances(self):
        ranges = plan_shards(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]
        sizes = [hi - lo for lo, hi in ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_clamped_to_rows(self):
        assert plan_shards(2, 8) == [(0, 1), (1, 2)]

    def test_rejects_bad_inputs(self):
        with pytest.raises(InvalidParameterError):
            plan_shards(0, 2)
        with pytest.raises(InvalidParameterError):
            plan_shards(5, 0)


class TestShardView:
    def test_partitions_every_run(self, built_index):
        store = built_index.store
        n = store.num_points
        lo, hi = n // 3, 2 * n // 3
        values, ids, positions = store.shard_view(lo, hi)
        assert values.shape == ids.shape == positions.shape
        for f in range(min(4, values.shape[0])):
            # Sub-runs stay sorted and point back into the full run.
            assert np.all(np.diff(values[f]) >= 0)
            assert np.all((ids[f] >= lo) & (ids[f] < hi))
            np.testing.assert_array_equal(
                store._values[f, positions[f]], values[f]
            )


class TestBitIdentity:
    @pytest.mark.parametrize("p", [0.5, 0.8, 1.0])
    def test_matches_flat_engine(self, built_index, small_split, service, p):
        k = 10
        sharded = service.search_batch(small_split.queries, k, p=p)
        for query, result in zip(small_split.queries, sharded):
            _assert_identical(built_index.knn(query, k, p=p), result)

    def test_shard_io_decomposes_random(self, small_split, service):
        results = service.search_batch(small_split.queries, 5, p=0.7)
        for result in results:
            assert result.shard_io is not None
            assert len(result.shard_io) == service.n_shards
            assert (
                sum(s.random for s in result.shard_io) == result.io.random
            )
            assert all(s.sequential == 0 for s in result.shard_io)

    def test_single_query_and_request_form(
        self, built_index, small_split, service
    ):
        query = small_split.queries[0]
        flat = built_index.knn(query, 7, p=0.6)
        _assert_identical(flat, service.search(query, 7, p=0.6))
        _assert_identical(
            flat, service.search(SearchRequest(query=query, k=7, p=0.6))
        )

    def test_cap_and_radius_overrides(
        self, built_index, small_split, service
    ):
        query = small_split.queries[1]
        flat = built_index.knn(query, 5, p=0.8, cap=40, radius=0.5)
        _assert_identical(
            flat, service.search(query, 5, p=0.8, cap=40, radius=0.5)
        )

    def test_original_rehashing_mode(self, small_config, small_split):
        index = LazyLSH(small_config, rehashing="original").build(
            small_split.data
        )
        with ShardedSearchService(index, n_shards=2) as svc:
            results = svc.search_batch(small_split.queries, 5, p=0.75)
        for query, result in zip(small_split.queries, results):
            _assert_identical(index.knn(query, 5, p=0.75), result)

    def test_tombstoned_points_stay_excluded(self, small_config, small_split):
        index = LazyLSH(small_config).build(small_split.data)
        index.remove(np.arange(0, 60))
        with ShardedSearchService(index, n_shards=3) as svc:
            results = svc.search_batch(small_split.queries, 5, p=0.9)
        for query, result in zip(small_split.queries, results):
            _assert_identical(index.knn(query, 5, p=0.9), result)
            assert not np.any(result.ids < 60)


class TestPersistenceRoundTrip:
    def test_sharded_service_over_restored_index(
        self, built_index, small_split, tmp_path
    ):
        """Satellite: save -> load -> serve must equal the fresh index."""
        path = save_index(built_index, tmp_path / "index.npz")
        restored = load_index(path)
        with ShardedSearchService(restored, n_shards=2) as svc:
            results = svc.search_batch(small_split.queries, 10, p=0.8)
        for query, result in zip(small_split.queries, results):
            _assert_identical(built_index.knn(query, 10, p=0.8), result)


class TestTelemetry:
    def test_merged_traces_match_flat_engine(self, built_index, small_split):
        sharded_tel = Telemetry()
        with ShardedSearchService(built_index, n_shards=2) as svc:
            svc.search_batch(
                small_split.queries, 5, p=0.7, telemetry=sharded_tel
            )
        flat_tel = Telemetry()
        for query in small_split.queries:
            built_index.knn(query, 5, p=0.7, telemetry=flat_tel)
        assert len(sharded_tel.traces) == len(flat_tel.traces)
        for ts, tf in zip(sharded_tel.traces, flat_tel.traces):
            ds, df = ts.to_dict(), tf.to_dict()
            validate_trace_dict(ds)
            assert ds["engine"] == "sharded"
            # Round-for-round: level, radius, collisions, crossings and
            # the per-round I/O deltas all replay the flat engine.
            assert ds["rounds"] == df["rounds"]
            assert ds["io"] == df["io"]
            assert ds["termination"] == df["termination"]

    def test_spans_and_metrics_recorded(self, built_index, small_split):
        # Spans only open for traced requests; untraced waves pay zero
        # tracing overhead.  Request a trace explicitly and read the
        # finished spans from the trace store.
        store = TraceStore(capacity=4)
        telemetry = Telemetry(trace_store=store)
        ctx = TraceContext.new()
        with ShardedSearchService(built_index, n_shards=2) as svc:
            svc.search_batch(
                small_split.queries[:2],
                5,
                p=0.8,
                telemetry=telemetry,
                trace_context=ctx,
            )
        spans = store.get(ctx.trace_id)
        assert spans is not None
        assert any(span["name"] == "serve.search_batch" for span in spans)
        rendered = telemetry.metrics_text()
        assert 'engine="sharded"' in rendered

    def test_untraced_wave_opens_no_spans(self, built_index, small_split):
        telemetry = Telemetry()
        with ShardedSearchService(built_index, n_shards=2) as svc:
            svc.search_batch(
                small_split.queries[:2], 5, p=0.8, telemetry=telemetry
            )
        assert telemetry.tracer.spans == []


class TestFleetTelemetry:
    """Acceptance: one Telemetry object sees the whole worker fleet."""

    def test_every_shard_reports_counters_and_spans(
        self, built_index, small_split
    ):
        store = TraceStore(capacity=4)
        telemetry = Telemetry(trace_store=store)
        ctx = TraceContext.new()
        with ShardedSearchService(built_index, n_shards=4) as svc:
            svc.search_batch(
                small_split.queries[:4],
                5,
                p=0.8,
                telemetry=telemetry,
                trace_context=ctx,
            )
        samples = parse_prometheus_text(telemetry.metrics_text())
        shards = {str(s) for s in range(4)}
        for family in (
            "lazylsh_shard_rows_scanned_total",
            "lazylsh_shard_crossings_total",
            "lazylsh_shard_busy_seconds_total",
            "lazylsh_shard_ops_total",
        ):
            labeled = {lbl["shard"] for lbl, _v in samples[family]}
            assert labeled == shards, f"{family} missing shards"
        rows = dict(
            (lbl["shard"], v)
            for lbl, v in samples["lazylsh_shard_rows_scanned_total"]
        )
        assert all(v > 0 for v in rows.values())
        # Worker-side spans were shipped over the pipe, rehydrated into
        # the coordinator's tracer, and published to the trace store
        # when the trace finished — tagged with their shard.
        spans = store.get(ctx.trace_id)
        assert spans is not None
        worker_spans = [
            s
            for s in spans
            if s["attributes"].get("origin") == "worker"
        ]
        assert worker_spans
        assert all(s["name"] == "worker.round" for s in worker_spans)
        assert {
            str(s["attributes"]["shard"]) for s in worker_spans
        } == shards
        # Pipe round-trip latency is observed per wave round.
        assert any(
            name == "lazylsh_shard_roundtrip_seconds_count"
            for name in samples
        )

    def test_service_level_telemetry_fallback(self, built_index, small_split):
        telemetry = Telemetry()
        with ShardedSearchService(
            built_index, n_shards=2, telemetry=telemetry
        ) as svc:
            result = svc.search(small_split.queries[0], 5, p=0.8)
        # No per-call telemetry was passed; the service-level one
        # captured the wave and the result carries its trace.
        assert len(telemetry.traces) == 1
        assert result.trace is not None
        validate_trace_dict(result.trace.to_dict())

    def test_aborted_attempt_leaves_no_residue(
        self, built_index, small_split
    ):
        """Satellite: kill a worker mid-wave; the replayed wave's trace
        and counters must look like a clean single run."""
        telemetry = Telemetry()
        with ShardedSearchService(built_index, n_shards=2) as svc:
            clean = svc.search(small_split.queries[0], 5, p=0.75)
            svc._crash_worker(1, after_rounds=2)
            result = svc.search(
                small_split.queries[0], 5, p=0.75, telemetry=telemetry
            )
            _assert_identical(clean, result)
            assert svc.restarts == 1
            assert svc.replays == 1
            stats = svc.stats()
            assert stats["replays"] == 1
        # The replayed wave's trace validates and its per-round I/O
        # deltas still sum to the totals (no double-counted rounds from
        # the aborted attempt).
        record = result.trace.to_dict()
        validate_trace_dict(record)
        assert (
            sum(r["io"]["sequential"] for r in record["rounds"])
            == record["io"]["sequential"]
        )
        assert (
            sum(r["io"]["random"] for r in record["rounds"])
            == record["io"]["random"]
        )
        samples = parse_prometheus_text(telemetry.metrics_text())
        respawns = {
            lbl["shard"]: v
            for lbl, v in samples["lazylsh_shard_respawns_total"]
        }
        # Exactly one respawn, attributed to the killed shard; the
        # surviving shard's series is materialised at zero.
        assert respawns == {"0": 0.0, "1": 1.0}
        assert sum(
            v for _lbl, v in samples["lazylsh_wave_replays_total"]
        ) == 1.0

    def test_health_report(self, built_index, small_split):
        with ShardedSearchService(built_index, n_shards=2) as svc:
            svc.search(small_split.queries[0], 5, p=0.8)
            health = svc.health()
            assert health["healthy"] is True
            assert health["closed"] is False
            assert health["n_shards"] == 2
            assert len(health["shards"]) == 2
            for shard in health["shards"]:
                assert shard["alive"] is True
                assert shard["shm"]["attached"] is True
                assert shard["last_heartbeat_age_seconds"] >= 0.0
            json.dumps(health)  # JSON-serialisable for /healthz
        after = svc.health()
        assert after["closed"] is True
        assert after["healthy"] is False


class TestLifecycle:
    def test_worker_crash_recovers_with_identical_results(
        self, built_index, small_split
    ):
        with ShardedSearchService(built_index, n_shards=2) as svc:
            before = svc.search(small_split.queries[0], 5, p=0.75)
            svc._crash_worker(1)
            after = svc.search(small_split.queries[0], 5, p=0.75)
            _assert_identical(before, after)
            assert svc.restarts == 1

    def test_close_is_idempotent_and_final(self, built_index, small_split):
        svc = ShardedSearchService(built_index, n_shards=2)
        svc.close()
        svc.close()
        with pytest.raises(ReproError):
            svc.search_batch(small_split.queries, 5, p=0.8)

    def test_index_io_stats_accumulate(self, built_index, small_split):
        before = built_index.io_stats.snapshot()
        with ShardedSearchService(built_index, n_shards=2) as svc:
            result = svc.search(small_split.queries[0], 5, p=0.8)
        delta = built_index.io_stats - before
        assert delta.sequential == result.io.sequential
        assert delta.random == result.io.random

    def test_stats_shape(self, service, small_split):
        service.search(small_split.queries[0], 3, p=0.9)
        stats = service.stats()
        assert stats["n_shards"] == 3
        assert len(stats["busy_seconds"]) == 3
        assert sum(stats["shard_points"]) == service.index.num_rows
        json.dumps(stats)  # JSON-serialisable


class TestValidation:
    def test_requires_built_index(self, small_config):
        with pytest.raises(IndexNotBuiltError):
            ShardedSearchService(LazyLSH(small_config))

    def test_rejects_metrics_request(self, service, small_split):
        request = SearchRequest(
            query=small_split.queries[0], k=5, metrics=(0.5, 1.0)
        )
        with pytest.raises(InvalidParameterError, match="single metric"):
            service.search(request)

    def test_rejects_request_plus_explicit_k(self, service, small_split):
        request = SearchRequest(query=small_split.queries[0], k=5)
        with pytest.raises(InvalidParameterError, match="not both"):
            service.search(request, 5)

    def test_requires_k_without_request(self, service, small_split):
        with pytest.raises(InvalidParameterError, match="k is required"):
            service.search(small_split.queries[0])

    def test_rejects_bad_tuning(self, service, small_split):
        queries = small_split.queries
        with pytest.raises(InvalidParameterError):
            service.search_batch(queries, 0)
        with pytest.raises(InvalidParameterError):
            service.search_batch(queries, 5, p=0.8, cap=2)
        with pytest.raises(InvalidParameterError):
            service.search_batch(queries, 5, p=0.8, radius=-1.0)
        with pytest.raises(InvalidParameterError):
            service.search_batch(queries[:, :3], 5)

    def test_empty_batch(self, service, small_split):
        assert (
            service.search_batch(
                np.empty((0, small_split.queries.shape[1])), 5
            )
            == []
        )


class TestServeCli:
    def test_serve_command_outputs_merged_results(
        self, built_index, small_split, tmp_path, capsys
    ):
        from repro.cli import main

        path = save_index(built_index, tmp_path / "index.npz")
        code = main(
            [
                "serve",
                str(path),
                "--k",
                "5",
                "--p",
                "0.8",
                "--shards",
                "2",
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["service"]["n_shards"] == 2
        assert len(report["results"]) == 1
        flat = built_index.knn(built_index.data[0], 5, p=0.8)
        assert report["results"][0]["ids"] == [int(i) for i in flat.ids]
        assert report["results"][0]["io"] == flat.io.to_dict()
