"""Unit tests for repro.core.montecarlo (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.montecarlo import (
    TABLE_CACHE,
    BallIntersectionTable,
    admissible_radius_range,
    estimate_ball_intersection,
)
from repro.errors import InvalidParameterError


class TestAdmissibleRange:
    def test_fractional_p(self):
        lower, upper = admissible_radius_range(4, 0.5, 2.0)
        # delta_lower = 4^(1-2) = 0.25; min(1, 2*0.25) = 0.5.
        assert lower == pytest.approx(0.25)
        assert upper == pytest.approx(0.5)

    def test_large_c_caps_at_delta_upper(self):
        lower, upper = admissible_radius_range(4, 0.5, 100.0)
        assert upper == pytest.approx(1.0)

    def test_p_above_one(self):
        lower, upper = admissible_radius_range(16, 2.0, 2.0)
        # [1, min(16^(1-1/2), 2)] = [1, 2].
        assert lower == pytest.approx(1.0)
        assert upper == pytest.approx(2.0)

    def test_degenerate_p_equals_base(self):
        lower, upper = admissible_radius_range(64, 1.0, 3.0)
        assert lower == upper == pytest.approx(1.0)

    def test_invalid_c(self):
        with pytest.raises(InvalidParameterError):
            admissible_radius_range(4, 0.5, 1.0)


class TestEstimate:
    def test_table_fields(self):
        table = estimate_ball_intersection(
            8, 0.5, 2.0, n_samples=5000, n_buckets=20, seed=1
        )
        assert isinstance(table, BallIntersectionTable)
        assert table.radii.shape == (20,)
        assert table.probabilities.shape == (20,)
        assert table.d == 8
        assert table.n_samples == 5000

    def test_probabilities_monotone_nondecreasing(self):
        table = estimate_ball_intersection(
            16, 0.6, 3.0, n_samples=20_000, n_buckets=50, seed=2
        )
        assert (np.diff(table.probabilities) >= 0).all()

    def test_probabilities_in_unit_interval(self):
        table = estimate_ball_intersection(
            16, 0.6, 3.0, n_samples=20_000, n_buckets=50, seed=2
        )
        assert (table.probabilities >= 0).all()
        assert (table.probabilities <= 1).all()

    def test_full_range_reaches_one(self):
        # With c large enough that the grid reaches delta_upper, the last
        # bucket contains the whole conditioning ball.
        table = estimate_ball_intersection(
            8, 0.5, 1e6, n_samples=20_000, n_buckets=50, seed=3
        )
        assert table.probabilities[-1] == pytest.approx(1.0)

    def test_degenerate_same_space(self):
        table = estimate_ball_intersection(
            32, 1.0, 3.0, n_samples=5000, n_buckets=10, seed=1
        )
        np.testing.assert_allclose(table.probabilities, 1.0)
        assert table.n_samples == 0  # no sampling needed

    def test_deterministic_given_seed(self):
        a = estimate_ball_intersection(8, 0.5, 2.0, n_samples=5000, n_buckets=20, seed=9)
        b = estimate_ball_intersection(8, 0.5, 2.0, n_samples=5000, n_buckets=20, seed=9)
        np.testing.assert_array_equal(a.probabilities, b.probabilities)

    def test_matches_direct_monte_carlo(self):
        # Cross-check one radius against an independent estimate.
        from repro.metrics.lp import lp_norm
        from repro.metrics.sampling import sample_lp_ball

        d, p, c = 8, 0.5, 2.0
        table = estimate_ball_intersection(
            d, p, c, n_samples=40_000, n_buckets=100, seed=4
        )
        r = float(table.radii[60])
        points = sample_lp_ball(40_000, d, p, seed=999)
        direct = (lp_norm(points, 1.0, axis=1) <= r).mean()
        assert table.prob_at(r) == pytest.approx(direct, abs=0.02)

    def test_l2_base_space(self):
        table = estimate_ball_intersection(
            8, 0.5, 2.0, base_s=2.0, n_samples=10_000, n_buckets=20, seed=5
        )
        assert table.base_s == 2.0
        assert (np.diff(table.probabilities) >= 0).all()

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            estimate_ball_intersection(8, 0.5, 2.0, n_samples=0)
        with pytest.raises(InvalidParameterError):
            estimate_ball_intersection(8, 0.5, 2.0, n_buckets=1)


class TestProbAt:
    def test_interpolation_clamps(self):
        table = estimate_ball_intersection(
            8, 0.5, 2.0, n_samples=5000, n_buckets=20, seed=6
        )
        below = float(table.prob_at(table.radii[0] * 0.5))
        above = float(table.prob_at(table.radii[-1] * 2.0))
        assert below == pytest.approx(float(table.probabilities[0]))
        assert above == pytest.approx(float(table.probabilities[-1]))

    def test_interpolation_between_grid_points(self):
        table = estimate_ball_intersection(
            8, 0.5, 2.0, n_samples=5000, n_buckets=20, seed=6
        )
        mid = (table.radii[3] + table.radii[4]) / 2.0
        val = float(table.prob_at(mid))
        assert (
            min(table.probabilities[3], table.probabilities[4])
            <= val
            <= max(table.probabilities[3], table.probabilities[4])
        )


class TestCache:
    def test_cache_returns_same_object(self):
        a = TABLE_CACHE.get(8, 0.5, 2.0, 1.0, 5000, 20, 42)
        b = TABLE_CACHE.get(8, 0.5, 2.0, 1.0, 5000, 20, 42)
        assert a is b

    def test_cache_distinguishes_keys(self):
        a = TABLE_CACHE.get(8, 0.5, 2.0, 1.0, 5000, 20, 42)
        b = TABLE_CACHE.get(8, 0.6, 2.0, 1.0, 5000, 20, 42)
        assert a is not b
