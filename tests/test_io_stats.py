"""Unit tests for repro.storage.io_stats."""

import pytest

from repro.storage.io_stats import IOMeter, IOStats


class TestIOStats:
    def test_starts_at_zero(self):
        stats = IOStats()
        assert stats.sequential == 0
        assert stats.random == 0
        assert stats.total == 0

    def test_counting(self):
        stats = IOStats()
        stats.add_sequential(3)
        stats.add_random()
        stats.add_random(2)
        assert stats.sequential == 3
        assert stats.random == 3
        assert stats.total == 6

    def test_negative_counts_rejected(self):
        stats = IOStats()
        with pytest.raises(ValueError):
            stats.add_sequential(-1)
        with pytest.raises(ValueError):
            stats.add_random(-5)

    def test_reset(self):
        stats = IOStats(sequential=5, random=2)
        stats.reset()
        assert stats.total == 0

    def test_snapshot_is_independent(self):
        stats = IOStats()
        snap = stats.snapshot()
        stats.add_sequential(10)
        assert snap.sequential == 0
        assert stats.sequential == 10

    def test_subtraction(self):
        later = IOStats(sequential=10, random=4)
        earlier = IOStats(sequential=3, random=1)
        delta = later - earlier
        assert delta.sequential == 7
        assert delta.random == 3

    def test_addition(self):
        total = IOStats(sequential=1, random=2) + IOStats(sequential=3, random=4)
        assert total.sequential == 4
        assert total.random == 6

    def test_str_mentions_counts(self):
        text = str(IOStats(sequential=7, random=2))
        assert "7" in text and "2" in text and "9" in text

    def test_to_dict_round_trip(self):
        stats = IOStats(sequential=11, random=4)
        record = stats.to_dict()
        assert record == {"sequential": 11, "random": 4, "total": 15}
        back = IOStats.from_dict(record)
        assert back.sequential == 11 and back.random == 4

    def test_from_dict_rejects_negative(self):
        with pytest.raises(ValueError):
            IOStats.from_dict({"sequential": -1, "random": 0})


class TestIOMeter:
    def test_measures_delta_only(self):
        stats = IOStats()
        stats.add_sequential(100)
        with IOMeter(stats) as meter:
            stats.add_sequential(3)
            stats.add_random(2)
        assert meter.delta.sequential == 3
        assert meter.delta.random == 2
        # The underlying counter keeps the grand total.
        assert stats.sequential == 103

    def test_zero_delta(self):
        stats = IOStats()
        with IOMeter(stats) as meter:
            pass
        assert meter.delta.total == 0

    def test_reenterable_accumulates_cumulative(self):
        stats = IOStats()
        meter = IOMeter(stats)
        with meter:
            stats.add_sequential(3)
        with meter:
            stats.add_random(2)
        # delta is per-block, cumulative spans both blocks.
        assert meter.delta.sequential == 0 and meter.delta.random == 2
        assert meter.cumulative.sequential == 3
        assert meter.cumulative.random == 2
        assert meter.to_dict() == meter.delta.to_dict()
