"""Tests for the multi-probe LSH extension."""

import numpy as np
import pytest

from repro.baselines import MultiProbeLSH
from repro.baselines.multiprobe import MultiProbeConfig, probing_sequence
from repro.datasets import make_synthetic, sample_queries
from repro.errors import IndexNotBuiltError, InvalidParameterError


@pytest.fixture(scope="module")
def mp_split():
    data = make_synthetic(800, 12, value_range=(0, 200), seed=21)
    return sample_queries(data, n_queries=3, seed=22)


@pytest.fixture(scope="module")
def mp(mp_split) -> MultiProbeLSH:
    return MultiProbeLSH(MultiProbeConfig(seed=4)).build(mp_split.data)


class TestProbingSequence:
    def test_scores_ascending(self):
        scores = np.array([0.9, 0.1, 0.5, 0.5, 0.04, 0.96])
        seq = probing_sequence(scores, 10)
        totals = [
            sum(scores[2 * coord + (0 if delta == -1 else 1)] for coord, delta in s)
            for s in seq
        ]
        assert totals == sorted(totals)

    def test_no_double_perturbation_of_coordinate(self):
        scores = np.array([0.2, 0.8, 0.3, 0.7, 0.4, 0.6])
        for pset in probing_sequence(scores, 20):
            coords = [coord for coord, _delta in pset]
            assert len(coords) == len(set(coords))

    def test_first_probe_is_cheapest_single(self):
        scores = np.array([0.9, 0.1, 0.5, 0.5])
        seq = probing_sequence(scores, 5)
        assert seq[0] == [(0, 1)]  # scores[1]=0.1 is 2*0+1 -> coord 0, +1

    def test_unique_probes(self):
        scores = np.array([0.2, 0.8, 0.3, 0.7])
        seq = probing_sequence(scores, 20)
        as_tuples = [tuple(sorted(p)) for p in seq]
        assert len(as_tuples) == len(set(as_tuples))

    def test_empty_inputs(self):
        assert probing_sequence(np.array([]), 5) == []
        assert probing_sequence(np.array([0.1, 0.9]), 0) == []


class TestIndex:
    def test_auto_width_positive(self, mp):
        assert mp._width > 0

    def test_explicit_width(self, mp_split):
        index = MultiProbeLSH(MultiProbeConfig(width=123.0, seed=1)).build(
            mp_split.data
        )
        assert index._width == 123.0

    def test_finds_neighbours(self, mp, mp_split):
        result = mp.knn(mp_split.queries[0], 10)
        assert result.ids.shape[0] == 10
        assert (np.diff(result.distances) >= 0).all()

    def test_probes_counted(self, mp, mp_split):
        result = mp.knn(mp_split.queries[1], 5)
        cfg = mp.config
        assert result.probes == cfg.num_tables * cfg.num_probes

    def test_more_probes_never_fewer_candidates(self, mp_split):
        few = MultiProbeLSH(MultiProbeConfig(num_probes=2, seed=4)).build(
            mp_split.data
        )
        many = MultiProbeLSH(MultiProbeConfig(num_probes=32, seed=4)).build(
            mp_split.data
        )
        q = mp_split.queries[0]
        assert many.knn(q, 5).candidates >= few.knn(q, 5).candidates

    def test_self_query(self, mp, mp_split):
        point = mp_split.data[3]
        result = mp.knn(point, 1)
        assert result.distances.size == 1
        assert result.distances[0] == pytest.approx(0.0)

    def test_index_size_positive(self, mp):
        assert mp.index_size_mb() > 0

    def test_query_before_build(self):
        with pytest.raises(IndexNotBuiltError):
            MultiProbeLSH().knn(np.zeros(4), 1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"m": 0},
            {"num_tables": 0},
            {"num_probes": 0},
            {"width": -1.0},
            {"width_scale": 0.0},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(InvalidParameterError):
            MultiProbeLSH(MultiProbeConfig(**kwargs))
