"""Edge-case and robustness tests across the stack.

Degenerate data a production index must survive: duplicate points,
constant coordinates, negative coordinates, very small datasets, and
store-level insertion invariants.
"""

import numpy as np
import pytest

from repro import LazyLSH, LazyLSHConfig
from repro.errors import InvalidParameterError
from repro.storage.inverted_index import InvertedListStore
from repro.storage.pages import PageLayout


def _tiny_config() -> LazyLSHConfig:
    return LazyLSHConfig(
        c=3.0, p_min=0.8, seed=13, mc_samples=10_000, mc_buckets=60
    )


class TestDegenerateData:
    def test_duplicate_points(self):
        rng = np.random.default_rng(71)
        base = rng.uniform(0, 100, size=(50, 8))
        data = np.vstack([base, base])  # every point twice
        index = LazyLSH(_tiny_config()).build(data)
        result = index.knn(base[0], 2, p=1.0)
        # Both copies are at distance zero.
        np.testing.assert_allclose(result.distances, [0.0, 0.0])
        assert set(result.ids.tolist()) == {0, 50}

    def test_constant_column(self):
        rng = np.random.default_rng(72)
        data = rng.uniform(0, 100, size=(80, 6))
        data[:, 2] = 42.0  # one dead dimension
        index = LazyLSH(_tiny_config()).build(data)
        result = index.knn(data[3], 3, p=0.8)
        assert result.ids[0] == 3

    def test_all_identical_points(self):
        data = np.full((30, 5), 7.0)
        index = LazyLSH(_tiny_config()).build(data)
        result = index.knn(data[0], 5, p=1.0)
        np.testing.assert_allclose(result.distances, 0.0)

    def test_negative_coordinates(self):
        rng = np.random.default_rng(73)
        data = rng.uniform(-500, -100, size=(100, 6))
        index = LazyLSH(_tiny_config()).build(data)
        result = index.knn(data[10], 3, p=1.0)
        assert result.ids[0] == 10

    def test_mixed_scale_coordinates(self):
        rng = np.random.default_rng(74)
        data = rng.uniform(0, 1, size=(100, 6))
        data[:, 0] *= 1e6  # one dominating dimension
        index = LazyLSH(_tiny_config()).build(data)
        result = index.knn(data[4], 3, p=1.0)
        assert result.ids[0] == 4

    def test_two_point_dataset(self):
        data = np.array([[0.0, 0.0], [10.0, 10.0]])
        index = LazyLSH(_tiny_config()).build(data)
        result = index.knn(np.array([1.0, 1.0]), 1, p=1.0)
        assert result.ids[0] == 0

    def test_single_point_dataset(self):
        data = np.array([[5.0, 5.0, 5.0]])
        index = LazyLSH(_tiny_config()).build(data)
        result = index.knn(np.array([0.0, 0.0, 0.0]), 1, p=1.0)
        assert result.ids[0] == 0

    def test_single_dimension(self):
        rng = np.random.default_rng(75)
        data = rng.uniform(0, 1000, size=(200, 1))
        index = LazyLSH(_tiny_config()).build(data)
        query = np.array([500.0])
        result = index.knn(query, 3, p=1.0)
        true_order = np.argsort(np.abs(data[:, 0] - 500.0))[:3]
        # 1-d space: the window scan should find the true neighbours.
        assert result.ids[0] == true_order[0]


class TestStoreInsert:
    def test_insert_preserves_sortedness(self):
        rng = np.random.default_rng(81)
        store = InvertedListStore(
            rng.integers(-20, 20, size=(4, 50)).astype(np.int64),
            PageLayout(page_size=64, entry_size=8),
        )
        store.insert(
            rng.integers(-20, 20, size=(4, 10)).astype(np.int64),
            np.arange(50, 60),
        )
        assert store.num_points == 60
        for func in range(4):
            values = store._values[func]
            assert (np.diff(values) >= 0).all()
            assert values.size == 60

    def test_inserted_ids_retrievable(self):
        hash_values = np.array([[0, 10, 20]], dtype=np.int64)
        store = InvertedListStore(hash_values)
        store.insert(np.array([[15]], dtype=np.int64), np.array([3]))
        got = store.read_window(0, 14, 16)
        assert got.tolist() == [3]

    def test_insert_shape_validation(self):
        store = InvertedListStore(np.zeros((2, 3), dtype=np.int64))
        with pytest.raises(InvalidParameterError):
            store.insert(np.zeros((3, 1), dtype=np.int64), np.array([9]))
        with pytest.raises(InvalidParameterError):
            store.insert(np.zeros((2, 2), dtype=np.int64), np.array([9]))
        with pytest.raises(InvalidParameterError):
            store.insert(np.zeros((2, 1), dtype=np.float64), np.array([9]))

    def test_empty_insert_is_noop(self):
        store = InvertedListStore(np.zeros((2, 3), dtype=np.int64))
        store.insert(np.zeros((2, 0), dtype=np.int64), np.array([], dtype=np.int64))
        assert store.num_points == 3

    def test_size_grows_with_inserts(self):
        store = InvertedListStore(np.zeros((1, 500), dtype=np.int64))
        before = store.size_bytes()
        store.insert(
            np.zeros((1, 200), dtype=np.int64), np.arange(500, 700)
        )
        assert store.size_bytes() > before


class TestQueryRobustness:
    def test_query_far_outside_data_range(self):
        rng = np.random.default_rng(91)
        data = rng.uniform(0, 100, size=(150, 6))
        index = LazyLSH(_tiny_config()).build(data)
        query = np.full(6, 1e5)  # far away from everything
        result = index.knn(query, 3, p=1.0)
        assert result.ids.shape == (3,)
        assert np.isfinite(result.distances).all()

    def test_repeated_queries_are_isolated(self):
        rng = np.random.default_rng(92)
        data = rng.uniform(0, 100, size=(150, 6))
        index = LazyLSH(_tiny_config()).build(data)
        query = data[0]
        first = index.knn(query, 5, p=1.0)
        second = index.knn(query, 5, p=1.0)
        np.testing.assert_array_equal(first.ids, second.ids)
        assert first.io.total == second.io.total
