"""Tests for the application layer (kNN graphs, dedup, metric advisor)."""

import networkx as nx
import numpy as np
import pytest

from repro import LazyLSH, LazyLSHConfig
from repro.apps import (
    build_knn_graph,
    find_near_duplicates,
    recommend_metric,
)
from repro.apps.knn_graph import graph_quality
from repro.datasets import exact_knn, make_labeled_dataset, make_synthetic
from repro.errors import IndexNotBuiltError, InvalidParameterError


@pytest.fixture(scope="module")
def graph_index():
    data = make_synthetic(300, 10, value_range=(0, 200), seed=51)
    cfg = LazyLSHConfig(c=3.0, p_min=0.7, seed=52, mc_samples=20_000, mc_buckets=80)
    return LazyLSH(cfg).build(data), data


class TestKnnGraph:
    def test_basic_shape(self, graph_index):
        index, data = graph_index
        graph = build_knn_graph(index, k=3, p=1.0)
        assert isinstance(graph, nx.DiGraph)
        assert graph.number_of_nodes() == 300
        out_degrees = [graph.out_degree(u) for u in graph.nodes]
        assert max(out_degrees) <= 3

    def test_no_self_loops_by_default(self, graph_index):
        index, _data = graph_index
        graph = build_knn_graph(index, k=3, p=1.0)
        assert all(u != v for u, v in graph.edges)

    def test_self_loops_when_requested(self, graph_index):
        index, _data = graph_index
        graph = build_knn_graph(index, k=3, p=1.0, include_self=True)
        assert any(u == v for u, v in graph.edges)

    def test_weights_are_distances(self, graph_index):
        from repro.metrics.lp import lp_distance

        index, data = graph_index
        graph = build_knn_graph(index, k=2, p=0.7)
        for u, v, weight in list(graph.edges(data="weight"))[:20]:
            assert weight == pytest.approx(float(lp_distance(data[u], data[v], 0.7)))

    def test_mutual_only_subset(self, graph_index):
        index, _data = graph_index
        full = build_knn_graph(index, k=3, p=1.0)
        mutual = build_knn_graph(index, k=3, p=1.0, mutual_only=True)
        assert mutual.number_of_edges() <= full.number_of_edges()
        for u, v in mutual.edges:
            assert mutual.has_edge(v, u)

    def test_graph_recall_reasonable(self, graph_index):
        index, data = graph_index
        graph = build_knn_graph(index, k=3, p=1.0)
        # Exact neighbours excluding self: take k+1 and drop the self hit.
        ids, _ = exact_knn(data, data, 4, 1.0)
        exact_ids = np.array(
            [[v for v in row if v != u][:3] for u, row in enumerate(ids)]
        )
        assert graph_quality(graph, exact_ids, k=3) > 0.5

    def test_requires_built_index(self):
        with pytest.raises(IndexNotBuiltError):
            build_knn_graph(LazyLSH(), k=2)

    def test_k_validated(self, graph_index):
        index, _data = graph_index
        with pytest.raises(InvalidParameterError):
            build_knn_graph(index, k=0)
        with pytest.raises(InvalidParameterError):
            build_knn_graph(index, k=300)

    def test_quality_validation(self):
        with pytest.raises(InvalidParameterError):
            graph_quality(nx.DiGraph(), np.zeros((3, 1)), k=2)


class TestNearDuplicates:
    def test_finds_planted_duplicates(self):
        rng = np.random.default_rng(61)
        base = rng.uniform(0, 100, size=(50, 16))
        dupes = base[:5] + rng.normal(0, 0.01, size=(5, 16))
        points = np.vstack([base, dupes])
        pairs = find_near_duplicates(points, threshold=1.0, p=1.0)
        found = {(i, j) for i, j, _ in pairs}
        for original in range(5):
            assert (original, 50 + original) in found

    def test_no_false_positives(self):
        rng = np.random.default_rng(62)
        points = rng.uniform(0, 100, size=(40, 8))
        pairs = find_near_duplicates(points, threshold=5.0, p=1.0)
        from repro.metrics.lp import lp_distance

        for i, j, dist in pairs:
            assert dist <= 5.0
            assert dist == pytest.approx(float(lp_distance(points[i], points[j], 1.0)))

    def test_sorted_by_distance(self):
        rng = np.random.default_rng(63)
        base = rng.uniform(0, 10, size=(30, 8))
        points = np.vstack([base, base + 0.001, base + 0.002])
        pairs = find_near_duplicates(points, threshold=1.0, p=1.0)
        dists = [d for _, _, d in pairs]
        assert dists == sorted(dists)

    def test_validation(self):
        points = np.zeros((5, 4))
        with pytest.raises(InvalidParameterError):
            find_near_duplicates(points, threshold=0.0)
        with pytest.raises(InvalidParameterError):
            find_near_duplicates(points, threshold=1.0, num_hashes=10, bands=3)
        with pytest.raises(InvalidParameterError):
            find_near_duplicates(points, threshold=1.0, sketch_size=99)
        with pytest.raises(InvalidParameterError):
            find_near_duplicates(np.zeros((1, 4)), threshold=1.0)


class TestMetricAdvisor:
    def test_recommendation_structure(self):
        dataset = make_labeled_dataset("bcw", seed=7)
        rec = recommend_metric(
            dataset.points,
            dataset.labels,
            p_values=(0.6, 1.0),
            seed=3,
        )
        assert rec.best_p in (0.6, 1.0)
        assert set(rec.accuracies) == {0.6, 1.0}
        assert 0.0 <= rec.exact_l1_accuracy <= 1.0
        assert "best metric" in rec.summary()

    def test_best_is_argmax(self):
        dataset = make_labeled_dataset("ionosphere", seed=7)
        rec = recommend_metric(
            dataset.points, dataset.labels, p_values=(0.5, 0.8, 1.0), seed=3
        )
        assert rec.accuracies[rec.best_p] == max(rec.accuracies.values())

    def test_validation(self):
        points = np.zeros((10, 3))
        labels = np.zeros(9)
        with pytest.raises(InvalidParameterError):
            recommend_metric(points, labels)
        with pytest.raises(InvalidParameterError):
            recommend_metric(np.zeros((10, 3)), np.zeros(10), p_values=())
        with pytest.raises(InvalidParameterError):
            recommend_metric(
                np.zeros((10, 3)), np.zeros(10), validation_fraction=1.5
            )

    def test_p_min_consistency_check(self):
        from repro.core.config import LazyLSHConfig

        dataset = make_labeled_dataset("bcw", seed=7)
        with pytest.raises(InvalidParameterError):
            recommend_metric(
                dataset.points,
                dataset.labels,
                p_values=(0.5, 1.0),
                config=LazyLSHConfig(p_min=0.8, mc_samples=5000, mc_buckets=50),
            )
