"""Tests for the evaluation metrics and harness."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.eval import (
    KnnClassifier,
    ResultTable,
    Timer,
    classification_accuracy,
    overall_ratio,
    precision_at_k,
    recall_at_k,
)
from repro.eval.ratio import mean_overall_ratio
from repro.eval.recall import mean_recall_at_k


class TestOverallRatio:
    def test_perfect_results(self):
        d = np.array([1.0, 2.0, 3.0])
        assert overall_ratio(d, d) == pytest.approx(1.0)

    def test_known_value(self):
        reported = np.array([2.0, 4.0])
        true = np.array([1.0, 2.0])
        assert overall_ratio(reported, true) == pytest.approx(2.0)

    def test_rank_wise_not_set_wise(self):
        reported = np.array([1.0, 10.0])
        true = np.array([1.0, 2.0])
        assert overall_ratio(reported, true) == pytest.approx((1.0 + 5.0) / 2.0)

    def test_zero_true_distance_with_zero_reported(self):
        reported = np.array([0.0, 2.0])
        true = np.array([0.0, 2.0])
        assert overall_ratio(reported, true) == pytest.approx(1.0)

    def test_zero_true_distance_with_nonzero_reported_skipped(self):
        reported = np.array([1.0, 4.0])
        true = np.array([0.0, 2.0])
        assert overall_ratio(reported, true) == pytest.approx(2.0)

    def test_all_zero_true_but_nonzero_reported(self):
        with pytest.raises(InvalidParameterError):
            overall_ratio(np.array([1.0]), np.array([0.0]))

    def test_unsorted_rejected(self):
        with pytest.raises(InvalidParameterError):
            overall_ratio(np.array([3.0, 1.0]), np.array([1.0, 2.0]))

    def test_shape_mismatch(self):
        with pytest.raises(InvalidParameterError):
            overall_ratio(np.array([1.0]), np.array([1.0, 2.0]))

    def test_empty(self):
        with pytest.raises(InvalidParameterError):
            overall_ratio(np.array([]), np.array([]))

    def test_mean_over_batch(self):
        a = [np.array([2.0]), np.array([4.0])]
        t = [np.array([1.0]), np.array([1.0])]
        assert mean_overall_ratio(a, t) == pytest.approx(3.0)

    def test_mean_validation(self):
        with pytest.raises(InvalidParameterError):
            mean_overall_ratio([], [])


class TestRecallPrecision:
    def test_full_recall(self):
        assert recall_at_k(np.array([1, 2, 3]), np.array([3, 2, 1])) == 1.0

    def test_partial_recall(self):
        assert recall_at_k(np.array([1, 9]), np.array([1, 2])) == 0.5

    def test_precision(self):
        assert precision_at_k(np.array([1, 9]), np.array([1, 2])) == 0.5

    def test_short_reported_list(self):
        assert recall_at_k(np.array([1]), np.array([1, 2])) == 0.5

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            recall_at_k(np.array([1]), np.array([]))
        with pytest.raises(InvalidParameterError):
            precision_at_k(np.array([]), np.array([1]))

    def test_mean_recall(self):
        reported = [np.array([1, 2]), np.array([9, 8])]
        true = [np.array([1, 2]), np.array([1, 2])]
        assert mean_recall_at_k(reported, true) == pytest.approx(0.5)


class TestKnnClassifier:
    @pytest.fixture
    def toy(self):
        # Two well-separated blobs.
        rng = np.random.default_rng(1)
        a = rng.normal(0.0, 0.3, size=(30, 4))
        b = rng.normal(5.0, 0.3, size=(30, 4))
        points = np.vstack([a, b])
        labels = np.array([0] * 30 + [1] * 30)
        return points, labels

    def test_exact_classifier_perfect_on_blobs(self, toy):
        points, labels = toy
        clf = KnnClassifier(points, labels)
        assert clf.predict_one(np.zeros(4), k=1, p=1.0) == 0
        assert clf.predict_one(np.full(4, 5.0), k=1, p=1.0) == 1

    def test_majority_vote(self, toy):
        points, labels = toy
        clf = KnnClassifier(points, labels)
        preds = clf.predict(points[:5], k=5, p=2.0)
        np.testing.assert_array_equal(preds, np.zeros(5))

    def test_accuracy_function(self, toy):
        points, labels = toy
        acc = classification_accuracy(
            points, labels, points, labels, k=1, p=1.0
        )
        assert acc == 1.0

    def test_retriever_plugged_in(self, toy, small_config):
        from repro import LazyLSH

        points, labels = toy
        index = LazyLSH(small_config).build(points)
        clf = KnnClassifier(points, labels, retriever=index)
        assert clf.predict_one(np.zeros(4), k=1, p=1.0) == 0

    def test_validation(self, toy):
        points, labels = toy
        with pytest.raises(InvalidParameterError):
            KnnClassifier(points, labels[:-1])
        clf = KnnClassifier(points, labels)
        with pytest.raises(InvalidParameterError):
            clf.predict_one(np.zeros(4), k=0)


class TestResultTable:
    def test_render_contains_everything(self):
        table = ResultTable("My Table", ["a", "b"])
        table.add_row([1, 2.5])
        table.add_row(["x", 0.001])
        text = table.render()
        assert "My Table" in text
        assert "2.5" in text
        assert "x" in text

    def test_row_length_validated(self):
        table = ResultTable("T", ["a", "b"])
        with pytest.raises(InvalidParameterError):
            table.add_row([1])

    def test_markdown_render(self):
        table = ResultTable("T", ["a", "b"])
        table.add_row([1, 2])
        md = table.render_markdown()
        assert "| a | b |" in md
        assert "| 1 | 2 |" in md

    def test_float_formatting(self):
        table = ResultTable("T", ["v"])
        table.add_row([1.23456])
        assert "1.235" in table.render()
        table2 = ResultTable("T", ["v"])
        table2.add_row([1.23e-7])
        assert "e-07" in table2.render()


class TestTimer:
    def test_measures_elapsed(self):
        import time

        with Timer() as t:
            time.sleep(0.01)
        assert t.seconds >= 0.009

    def test_reentry_accumulates_total(self):
        timer = Timer()
        with timer:
            pass
        first = timer.seconds
        with timer:
            pass
        assert timer.entries == 2
        assert timer.total_seconds >= first + timer.seconds - 1e-9
        assert timer.total_seconds >= timer.seconds

    def test_as_row(self):
        timer = Timer()
        with timer:
            pass
        row = timer.as_row()
        assert set(row) == {"seconds", "total_seconds", "entries"}
        assert row["entries"] == 1
        assert row["seconds"] == timer.seconds
