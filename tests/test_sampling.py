"""Unit tests for repro.metrics.sampling: uniform lp-ball sampling."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.metrics.lp import lp_norm
from repro.metrics.sampling import sample_lp_ball, sample_lp_sphere


class TestSampleLpBall:
    @pytest.mark.parametrize("p", [0.5, 1.0, 2.0])
    def test_samples_inside_ball(self, p):
        points = sample_lp_ball(5_000, 8, p, seed=1)
        norms = lp_norm(points, p, axis=1)
        assert (norms <= 1.0 + 1e-9).all()

    def test_shape_and_determinism(self):
        a = sample_lp_ball(100, 5, 0.7, seed=3)
        b = sample_lp_ball(100, 5, 0.7, seed=3)
        assert a.shape == (100, 5)
        np.testing.assert_array_equal(a, b)

    def test_zero_samples(self):
        assert sample_lp_ball(0, 4, 1.0, seed=1).shape == (0, 4)

    def test_radius_scaling(self):
        points = sample_lp_ball(2_000, 4, 1.0, radius=5.0, seed=2)
        norms = lp_norm(points, 1.0, axis=1)
        assert (norms <= 5.0 + 1e-9).all()
        assert norms.max() > 4.0  # actually fills the larger ball

    def test_center_offset(self):
        centre = np.array([10.0, -3.0, 0.5])
        points = sample_lp_ball(2_000, 3, 2.0, center=centre, seed=4)
        norms = lp_norm(points - centre, 2.0, axis=1)
        assert (norms <= 1.0 + 1e-9).all()
        assert np.linalg.norm(points.mean(axis=0) - centre) < 0.1

    def test_center_shape_validation(self):
        with pytest.raises(InvalidParameterError):
            sample_lp_ball(10, 3, 1.0, center=np.zeros(4), seed=1)

    def test_negative_count_rejected(self):
        with pytest.raises(InvalidParameterError):
            sample_lp_ball(-1, 3, 1.0)

    def test_uniformity_radial_cdf(self):
        # Uniform in the ball => Pr(||x||_p <= t) = t^d.
        d, p, n = 3, 1.0, 60_000
        norms = lp_norm(sample_lp_ball(n, d, p, seed=5), p, axis=1)
        for t in (0.3, 0.5, 0.8):
            assert (norms <= t).mean() == pytest.approx(t**d, abs=0.01)

    def test_sign_symmetry(self):
        points = sample_lp_ball(50_000, 2, 0.5, seed=6)
        # Each orthant should hold ~25% of the mass.
        frac = ((points[:, 0] > 0) & (points[:, 1] > 0)).mean()
        assert frac == pytest.approx(0.25, abs=0.01)

    def test_l2_ball_matches_known_volume_ratio(self):
        # In 2-d, the l2 unit ball contains the square of half-diagonal
        # sqrt(2)/2... simpler: fraction with |x|+|y| <= 1 equals
        # area(l1 ball)/area(l2 ball) = 2 / pi.
        points = sample_lp_ball(80_000, 2, 2.0, seed=7)
        frac = (np.abs(points).sum(axis=1) <= 1.0).mean()
        assert frac == pytest.approx(2.0 / np.pi, abs=0.01)


class TestSampleLpSphere:
    @pytest.mark.parametrize("p", [0.5, 1.0, 2.0])
    def test_samples_on_sphere(self, p):
        points = sample_lp_sphere(2_000, 6, p, seed=1)
        norms = lp_norm(points, p, axis=1)
        np.testing.assert_allclose(norms, 1.0, rtol=1e-9)

    def test_radius(self):
        points = sample_lp_sphere(500, 4, 1.0, radius=3.0, seed=2)
        np.testing.assert_allclose(lp_norm(points, 1.0, axis=1), 3.0, rtol=1e-9)

    def test_zero_samples(self):
        assert sample_lp_sphere(0, 4, 1.0).shape == (0, 4)


class TestL1NormConcentration:
    """The geometric fact LazyLSH exploits: uniform samples of the unit
    l0.5 ball in high dimension have l1 norms concentrated well above the
    lower bound d^(1-1/p) (Figure 4's sharp rise around ratio ~1.5)."""

    def test_concentration_location(self):
        d, p = 64, 0.5
        points = sample_lp_ball(20_000, d, p, seed=8)
        l1 = lp_norm(points, 1.0, axis=1)
        lower = float(d) ** (1.0 - 1.0 / p)
        ratio = l1 / lower
        # Median ratio should sit in the window the paper's Figure 4
        # shows for the p1' jump (~1.4 - 1.7).
        assert 1.2 < np.median(ratio) < 1.9
        # And nearly everything is inside the admissible range [1, 2].
        assert (ratio >= 1.0 - 1e-9).all()
        assert (ratio <= 2.2).mean() > 0.999
