"""Tests for the zero-copy mmap storage backend (DESIGN.md section 12).

Covers the format-v3 binary layout (round trip, header, corruption
errors), the eager/mmap open modes of ``load_index`` — which must answer
every query bit-identically — the sharded service's mmap attach at 1, 2
and 4 shards (including an all-tombstoned shard), WAL ingest against a
mapped fleet (materialise-on-update), and v3 checkpoint/recovery.
"""

import numpy as np
import pytest

from repro import LazyLSH, LazyLSHConfig
from repro.datasets import make_synthetic
from repro.durability import WAL_SUBDIR, WalFeed, create, recover
from repro.durability.checkpoint import checkpoint_now, states_identical
from repro.errors import InvalidParameterError
from repro.persistence import (
    IndexFormatError,
    load_index,
    mmap_capable,
    open_v3_arrays,
    read_header,
    save_index,
)

CFG = dict(c=3.0, p_min=0.7, seed=43, mc_samples=10_000, mc_buckets=60)
TOMBSTONES = [3, 77, 150, 299]


def _build(n=300, d=10, seed=44):
    data = make_synthetic(n, d, value_range=(0, 200), seed=seed)
    return LazyLSH(LazyLSHConfig(**CFG)).build(data), data


@pytest.fixture(scope="module")
def corpus():
    """A built index with a few tombstones, plus its data."""
    index, data = _build()
    index.remove(TOMBSTONES)
    return index, data


@pytest.fixture(scope="module")
def v3_path(corpus, tmp_path_factory):
    index, _ = corpus
    path = tmp_path_factory.mktemp("v3") / "idx.npz"
    return save_index(index, path, wal_lsn=9, wal_epoch=2, format_version=3)


def _queries(data):
    return [data[0], data[123], np.full(data.shape[1], 99.0)]


def _assert_identical(a, b):
    np.testing.assert_array_equal(a.ids, b.ids)
    np.testing.assert_array_equal(a.distances, b.distances)
    assert a.io.sequential == b.io.sequential
    assert a.io.random == b.io.random
    assert a.rounds == b.rounds
    assert a.candidates == b.candidates
    assert a.termination == b.termination


class TestV3RoundTrip:
    def test_eager_and_mmap_bit_identical(self, corpus, v3_path):
        index, data = corpus
        eager = load_index(v3_path)
        mapped = load_index(v3_path, backend="mmap")
        for q in _queries(data):
            for p in (0.7, 1.0):
                original = index.knn(q, 5, p=p)
                _assert_identical(original, eager.knn(q, 5, p=p))
                _assert_identical(original, mapped.knn(q, 5, p=p))

    def test_backend_kind_and_storage_info(self, v3_path):
        eager = load_index(v3_path)
        info = eager.storage_info()
        assert info["backend"] == "eager"
        assert info["mapped_bytes"] == 0
        assert info["resident_bytes"] > 0
        mapped = load_index(v3_path, backend="mmap")
        info = mapped.storage_info()
        assert info["backend"] == "mmap"
        assert info["mapped_bytes"] > 0
        assert info["source_path"] == str(v3_path)
        # Mutable state (alive mask) stays resident even when mapped.
        assert 0 < info["resident_bytes"] < info["mapped_bytes"]

    def test_read_header_v3(self, v3_path):
        header = read_header(v3_path)
        assert header["format_version"] == 3
        assert header["wal_lsn"] == 9
        assert header["wal_epoch"] == 2
        assert header["live_count"] == 300 - len(TOMBSTONES)

    def test_mmap_capable(self, v3_path, tmp_path, corpus):
        assert mmap_capable(v3_path)
        index, _ = corpus
        v2 = save_index(index, tmp_path / "v2.npz")
        assert not mmap_capable(v2)
        assert not mmap_capable(tmp_path / "missing.npz")

    def test_open_v3_arrays(self, corpus, v3_path):
        index, _ = corpus
        header, arrays = open_v3_arrays(v3_path, names=("values", "ids"))
        assert header["format_version"] == 3
        assert np.array_equal(arrays["values"], index.store._values)
        assert np.array_equal(arrays["ids"], index.store._ids)

    def test_insert_materialises_mmap_index(self, corpus, v3_path):
        _, data = corpus
        mapped = load_index(v3_path, backend="mmap")
        twin = load_index(v3_path)
        assert mapped.store.backend_kind == "mmap"
        batch = make_synthetic(5, data.shape[1], value_range=(0, 200), seed=9)
        mapped.insert(batch)
        twin.insert(batch)
        assert mapped.store.backend_kind == "eager"
        for q in (_queries(data)[0], batch[2]):
            _assert_identical(twin.knn(q, 5, p=1.0), mapped.knn(q, 5, p=1.0))

    def test_remove_on_mmap_index(self, corpus, v3_path):
        _, data = corpus
        mapped = load_index(v3_path, backend="mmap")
        twin = load_index(v3_path)
        mapped.remove([10, 20])
        twin.remove([10, 20])
        for q in _queries(data):
            _assert_identical(twin.knn(q, 5, p=1.0), mapped.knn(q, 5, p=1.0))

    def test_uncompressed_v2_round_trip(self, corpus, tmp_path):
        index, data = corpus
        plain = save_index(index, tmp_path / "plain.npz", compress=False)
        packed = save_index(index, tmp_path / "packed.npz", compress=True)
        assert plain.stat().st_size > packed.stat().st_size
        restored = load_index(plain)
        for q in _queries(data)[:1]:
            _assert_identical(index.knn(q, 5, p=1.0), restored.knn(q, 5, p=1.0))


class TestErrors:
    def test_mmap_rejected_for_v2(self, corpus, tmp_path):
        index, _ = corpus
        path = save_index(index, tmp_path / "old.npz")
        with pytest.raises(IndexFormatError, match="cannot be memory-mapped"):
            load_index(path, backend="mmap")

    def test_unknown_backend_rejected(self, v3_path):
        with pytest.raises(InvalidParameterError, match="backend"):
            load_index(v3_path, backend="zram")

    def test_truncated_v3_rejected(self, v3_path, tmp_path):
        stub = tmp_path / "torn.npz"
        stub.write_bytes(v3_path.read_bytes()[: v3_path.stat().st_size // 2])
        with pytest.raises(IndexFormatError, match="truncated or corrupt"):
            load_index(stub)

    def test_open_v3_arrays_rejects_npz(self, corpus, tmp_path):
        index, _ = corpus
        path = save_index(index, tmp_path / "old.npz")
        with pytest.raises(IndexFormatError, match="only v3"):
            open_v3_arrays(path)

    def test_unwritable_format_version(self, corpus, tmp_path):
        index, _ = corpus
        with pytest.raises(InvalidParameterError, match="format versions"):
            save_index(index, tmp_path / "x.npz", format_version=1)


class TestShardedIdentity:
    """mmap-attached fleets must answer exactly like shm ones."""

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_shm_vs_mmap_vs_flat(self, corpus, v3_path, n_shards):
        from repro.serve import ShardedSearchService

        index, data = corpus
        mapped = load_index(v3_path, backend="mmap")
        with ShardedSearchService(
            index, n_shards=n_shards
        ) as shm_svc, ShardedSearchService(
            mapped, n_shards=n_shards, attach="mmap"
        ) as mm_svc:
            for q in _queries(data):
                for p in (0.7, 1.0):
                    flat = index.knn(q, 5, p=p)
                    _assert_identical(flat, shm_svc.search(q, 5, p=p))
                    _assert_identical(flat, mm_svc.search(q, 5, p=p))
            health = mm_svc.health()
            assert health["storage"]["attach"] == "mmap"
            assert health["storage"]["backend"] == "mmap"
            for shard in health["shards"]:
                assert shard["mmap"]["attached"] is True

    def test_all_tombstoned_shard(self, tmp_path):
        from repro.serve import ShardedSearchService

        index, data = _build(n=200, seed=46)
        # With 4 contiguous shards over 200 points, shard 0 owns [0, 50):
        # tombstone all of it so one worker scans only dead entries.
        index.remove(np.arange(50))
        path = save_index(index, tmp_path / "dead.npz", format_version=3)
        mapped = load_index(path, backend="mmap")
        with ShardedSearchService(
            index, n_shards=4
        ) as shm_svc, ShardedSearchService(
            mapped, n_shards=4, attach="mmap"
        ) as mm_svc:
            for q in (data[0], data[120]):
                flat = index.knn(q, 5, p=1.0)
                assert np.all(flat.ids >= 50)
                _assert_identical(flat, shm_svc.search(q, 5, p=1.0))
                _assert_identical(flat, mm_svc.search(q, 5, p=1.0))


class TestWalIngestMmap:
    def test_mmap_fleet_tracks_wal_bit_identically(self, tmp_path):
        from repro.serve import ShardedSearchService

        writer_index, data = _build(n=240, seed=47)
        path = save_index(
            writer_index, tmp_path / "snap.npz", format_version=3
        )
        writer = create(writer_index, tmp_path / "home", sync=False)
        mapped = load_index(path, backend="mmap")
        feed = WalFeed(tmp_path / "home" / WAL_SUBDIR)
        queries = [data[5], data[100]]
        try:
            with ShardedSearchService(
                mapped, n_shards=2, attach="mmap"
            ) as svc:
                for q in queries:
                    _assert_identical(
                        writer.knn(q, 5, p=1.0), svc.search(q, 5, p=1.0)
                    )
                batch = np.random.default_rng(48).uniform(
                    0.0, 200.0, size=(7, data.shape[1])
                )
                writer.insert(batch)
                writer.remove([4, 100])
                assert svc.ingest(feed.poll()) == 2
                # Workers materialised on the first update; answers must
                # still match the writer exactly.
                for q in queries + [batch[0], batch[6]]:
                    _assert_identical(
                        writer.knn(q, 5, p=1.0), svc.search(q, 5, p=1.0)
                    )
        finally:
            writer.close()


class TestCheckpointRecovery:
    def test_v3_checkpoint_recovers_on_both_backends(self, tmp_path):
        index, data = _build(n=220, seed=49)
        reference, _ = _build(n=220, seed=49)
        durable = create(index, tmp_path, sync=False)
        batch = np.random.default_rng(50).uniform(
            0.0, 200.0, size=(6, data.shape[1])
        )
        durable.insert(batch)
        durable.remove([17])
        reference.insert(batch)
        reference.remove([17])
        ckpt = checkpoint_now(durable, tmp_path, format_version=3)
        durable.close()
        assert mmap_capable(ckpt)
        for backend in ("eager", "mmap"):
            recovered, report = recover(tmp_path, sync=False, backend=backend)
            try:
                assert report["backend"] == backend
                assert states_identical(
                    recovered.index, reference, queries=data[:3], k=5
                )
            finally:
                recovered.close()

    def test_mmap_recovery_falls_back_on_v2_checkpoint(self, tmp_path):
        index, _data = _build(n=200, seed=51)
        durable = create(index, tmp_path, sync=False)  # v2 LSN-0 checkpoint
        durable.close()
        recovered, report = recover(tmp_path, sync=False, backend="mmap")
        try:
            assert report["backend"] == "eager"
        finally:
            recovered.close()

    def test_uncompressed_checkpoint(self, tmp_path):
        index, data = _build(n=200, seed=52)
        reference, _ = _build(n=200, seed=52)
        durable = create(index, tmp_path, sync=False)
        durable.remove([5, 6])
        reference.remove([5, 6])
        checkpoint_now(durable, tmp_path, compress=False)
        durable.close()
        recovered, _report = recover(tmp_path, sync=False)
        try:
            assert states_identical(
                recovered.index, reference, queries=data[:2], k=5
            )
        finally:
            recovered.close()
