"""Tests for the classic LSH families (Hamming, angular, Jaccard)."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.metrics.families import (
    BitSamplingLSH,
    MinHash,
    SimHash,
    angular_distance,
    hamming_distance,
    jaccard_similarity,
)


class TestDistances:
    def test_hamming(self):
        a = np.array([0, 1, 1, 0])
        b = np.array([1, 1, 0, 0])
        assert hamming_distance(a, b) == 2

    def test_hamming_rowwise(self):
        a = np.array([[0, 1], [1, 1]])
        b = np.array([1, 1])
        np.testing.assert_array_equal(hamming_distance(a, b), [1, 0])

    def test_angular_orthogonal(self):
        assert angular_distance(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == (
            pytest.approx(np.pi / 2)
        )

    def test_angular_identical_and_opposite(self):
        v = np.array([2.0, 3.0])
        assert angular_distance(v, v) == pytest.approx(0.0)
        assert angular_distance(v, -v) == pytest.approx(np.pi)

    def test_angular_zero_vector_rejected(self):
        with pytest.raises(InvalidParameterError):
            angular_distance(np.zeros(2), np.ones(2))

    def test_jaccard(self):
        assert jaccard_similarity({1, 2, 3}, {2, 3, 4}) == pytest.approx(0.5)
        assert jaccard_similarity(set(), set()) == 1.0
        assert jaccard_similarity({1}, {2}) == 0.0


class TestBitSampling:
    def test_collision_rate_matches_theory(self):
        d = 64
        rng = np.random.default_rng(1)
        a = rng.integers(0, 2, d)
        b = a.copy()
        flip = rng.choice(d, 16, replace=False)
        b[flip] = 1 - b[flip]
        lsh = BitSamplingLSH(d, 20_000, seed=2)
        ha = lsh.hash_points(a[None, :])[:, 0]
        hb = lsh.hash_points(b[None, :])[:, 0]
        empirical = float((ha == hb).mean())
        predicted = lsh.collision_probability(16)
        assert empirical == pytest.approx(predicted, abs=0.01)

    def test_identical_always_collide(self):
        lsh = BitSamplingLSH(8, 100, seed=3)
        v = np.ones(8, dtype=int)
        h = lsh.hash_points(v[None, :])
        np.testing.assert_array_equal(h, lsh.hash_points(v[None, :]))

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            BitSamplingLSH(0, 1)
        lsh = BitSamplingLSH(4, 2, seed=1)
        with pytest.raises(InvalidParameterError):
            lsh.hash_points(np.zeros((1, 5)))
        with pytest.raises(InvalidParameterError):
            lsh.collision_probability(5)


class TestSimHash:
    def test_collision_rate_matches_theory(self):
        rng = np.random.default_rng(5)
        d = 32
        a = rng.standard_normal(d)
        # Construct b at a known angle from a.
        perp = rng.standard_normal(d)
        perp -= perp @ a / (a @ a) * a
        perp /= np.linalg.norm(perp)
        angle = 0.7
        b = np.cos(angle) * a / np.linalg.norm(a) + np.sin(angle) * perp
        lsh = SimHash(d, 20_000, seed=6)
        ha = lsh.hash_points(a[None, :])[:, 0]
        hb = lsh.hash_points(b[None, :])[:, 0]
        empirical = float((ha == hb).mean())
        assert empirical == pytest.approx(
            SimHash.collision_probability(angle), abs=0.015
        )

    def test_signature_packs_bits(self):
        lsh = SimHash(4, 8, seed=7)
        sig = lsh.signature(np.ones(4))
        assert 0 <= sig < 2**8

    def test_scale_invariance(self):
        lsh = SimHash(6, 64, seed=8)
        v = np.random.default_rng(9).standard_normal(6)
        np.testing.assert_array_equal(
            lsh.hash_points(v[None, :]), lsh.hash_points((5.0 * v)[None, :])
        )

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            SimHash(1, 0)
        with pytest.raises(InvalidParameterError):
            SimHash.collision_probability(4.0)


class TestMinHash:
    def test_estimate_matches_true_jaccard(self):
        a = set(range(0, 60))
        b = set(range(30, 90))
        true = jaccard_similarity(a, b)
        mh = MinHash(5_000, seed=10)
        estimate = mh.estimate_jaccard(mh.hash_set(a), mh.hash_set(b))
        assert estimate == pytest.approx(true, abs=0.03)

    def test_identical_sets(self):
        mh = MinHash(100, seed=11)
        sig = mh.hash_set({3, 1, 4, 1, 5})
        assert mh.estimate_jaccard(sig, mh.hash_set({1, 3, 4, 5})) == 1.0

    def test_disjoint_sets_rarely_collide(self):
        mh = MinHash(2_000, seed=12)
        est = mh.estimate_jaccard(
            mh.hash_set(set(range(100))), mh.hash_set(set(range(1000, 1100)))
        )
        assert est < 0.02

    def test_empty_set_rejected(self):
        with pytest.raises(InvalidParameterError):
            MinHash(4, seed=1).hash_set(set())

    def test_signature_shape_mismatch(self):
        mh = MinHash(8, seed=2)
        with pytest.raises(InvalidParameterError):
            mh.estimate_jaccard(np.zeros(8), np.zeros(7))
