"""Tests for the multi-node replication plane (repro.cluster).

Pins the contracts of DESIGN §16:

* **Protocol** — the length-prefixed framing round-trips every message
  kind and fails loudly (never silently) on truncation, oversized
  frames, and version mismatches; WAL frames ship as the exact on-disk
  bytes, CRC re-verified on receipt.
* **Replication** — a follower bootstraps from the leader's newest
  checkpoint over the wire, tails the WAL into ``service.ingest``, and
  serves answers **bit-identical** to a single-process reference index
  at its acked LSN; it reconnects after a leader restart and
  re-bootstraps after the log is truncated under it; a gapped stream
  surfaces as a *typed* ``wal_gap`` wire error.
* **Routing** — consistent rendezvous slot assignment (removing a node
  only moves its own slots), staleness-bounded follower reads
  (``max_lag_lsn``) with a typed ``stale_read`` rejection, and failover
  to the caught-up follower after the leader is SIGKILL'd —
  answers after failover stay bit-identical to the reference.
"""

import json
import multiprocessing as mp
import os
import signal
import socket
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro import LazyLSH, LazyLSHConfig
from repro.cluster import (
    MSG_ACK,
    MSG_ERROR,
    MSG_HELLO,
    MSG_WAL,
    PROTOCOL_VERSION,
    FollowerNode,
    ProtocolError,
    Router,
    WalShipper,
    assign_slots,
    recv_message,
    send_message,
    slot_of,
)
from repro.cluster.protocol import MSG_PING
from repro.datasets import make_synthetic
from repro.durability import (
    WAL_SUBDIR,
    WalRecord,
    WriteAheadLog,
    checkpoint_now,
    create,
    encode_wal_record,
    write_checkpoint,
)
from repro.durability.wal import apply_record, list_segments
from repro.durability.feed import WalFeed

CFG = dict(c=3.0, p_min=0.7, seed=41, mc_samples=10_000, mc_buckets=60)
K = 5


def _build(n=240, d=10, seed=40):
    data = make_synthetic(n, d, value_range=(0, 200), seed=seed)
    return LazyLSH(LazyLSHConfig(**CFG)).build(data), data


def _batch(m, d=10, seed=50):
    return np.random.default_rng(seed).uniform(0.0, 200.0, size=(m, d))


def _free_port():
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def _restart_shipper(home, port, timeout=10.0):
    """Re-bind a shipper on its old port (waits out FIN_WAIT sockets)."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            return WalShipper(home, port=port, poll_interval=0.01).start()
        except OSError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.1)


def _assert_same_answers(truth, service, queries):
    for q in queries:
        expected = truth.knn(q, K, p=1.0)
        got = service.search(q, K, p=1.0)
        np.testing.assert_array_equal(expected.ids, got.ids)
        np.testing.assert_array_equal(expected.distances, got.distances)


# ---------------------------------------------------------------------------
# Protocol framing
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_round_trip_all_kinds(self):
        a, b = socket.socketpair()
        try:
            cases = [
                (MSG_HELLO, {"v": PROTOCOL_VERSION, "start_lsn": 7}, b""),
                (MSG_WAL, {"lsn": 9}, b"\x00\x01binary\xff"),
                (MSG_ACK, {"lsn": 9}, b""),
                (MSG_PING, {"lsn": 12}, b""),
                (MSG_ERROR, {"code": "wal_gap", "expected": 1}, b""),
            ]
            for kind, meta, blob in cases:
                send_message(a, kind, meta, blob)
            for kind, meta, blob in cases:
                assert recv_message(b) == (kind, meta, blob)
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none_torn_frame_raises(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_message(b) is None  # EOF before any byte
        finally:
            b.close()
        a, b = socket.socketpair()
        try:
            # A complete frame followed by EOF still delivers.
            send_message(a, MSG_ACK, {"lsn": 3})
            a.close()
            assert recv_message(b) == (MSG_ACK, {"lsn": 3}, b"")
        finally:
            b.close()
        a, b = socket.socketpair()
        try:
            a.sendall(b"\x04\x00")  # half a header
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_message(b)
        finally:
            b.close()

    def test_oversized_frame_rejected(self):
        import struct

        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack("<IIB", 2**30, 0, MSG_ACK))
            with pytest.raises(ProtocolError, match="meta"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_wal_frame_blob_is_on_disk_bytes(self, tmp_path):
        points = _batch(3, seed=7)
        with WriteAheadLog(tmp_path, sync=False) as wal:
            wal.append_insert(points, np.arange(3))
        segment = next(tmp_path.glob("segment-*.wal"))
        record = WalFeed(tmp_path).poll()[0]
        assert encode_wal_record(record) == segment.read_bytes()


# ---------------------------------------------------------------------------
# Consistent slot assignment
# ---------------------------------------------------------------------------


class TestSlots:
    def test_every_slot_assigned_from_names(self):
        names = ["leader", "f1", "f2"]
        slots = assign_slots(names, 16)
        assert sorted(slots) == list(range(16))
        assert set(slots.values()) <= set(names)
        assert len(set(slots.values())) > 1  # spread, not a constant map

    def test_removing_a_node_only_moves_its_slots(self):
        before = assign_slots(["leader", "f1", "f2"], 64)
        after = assign_slots(["leader", "f2"], 64)
        for slot, owner in before.items():
            if owner != "f1":
                assert after[slot] == owner  # untouched by the departure

    def test_slot_of_is_stable_and_bounded(self):
        query = [1.5, 2.0, 3.25]
        assert slot_of(query, 16) == slot_of(list(query), 16)
        assert 0 <= slot_of(query, 16) < 16
        assert slot_of([9.0, 9.0], 16) != slot_of(query, 16) or True


# ---------------------------------------------------------------------------
# Leader -> follower replication
# ---------------------------------------------------------------------------


@pytest.fixture
def leader_home(tmp_path):
    """A durable leader home seeded with the standard 240-point build."""
    index, data = _build()
    durable = create(index, tmp_path / "leader", sync=False, segment_bytes=2048)
    yield durable, tmp_path / "leader", data
    durable.close()


class TestReplication:
    def test_wire_bootstrap_catch_up_and_identity(self, leader_home, tmp_path):
        durable, home, data = leader_home
        fresh = _batch(5, seed=81)
        with WalShipper(home, poll_interval=0.01) as shipper:
            durable.insert(_batch(7, seed=80))
            durable.remove([4, 100])
            follower = FollowerNode(
                tmp_path / "follower",
                ("127.0.0.1", shipper.port),
                n_shards=2,
            )
            with follower:
                assert follower.wait_for_lsn(2), follower.status()
                # Writes made *while* the stream is live also arrive.
                durable.insert(fresh)
                assert follower.wait_for_lsn(3), follower.status()
                queries = [data[5], data[100], fresh[0], np.full(10, 77.0)]
                _assert_same_answers(durable, follower.service, queries)
                status = follower.status()
                assert status["bootstraps"] == 1
                assert status["records_applied"] == 3
                assert status["connected"] is True
                # The leader saw our acks (drives router failover).
                deadline = time.monotonic() + 5
                while time.monotonic() < deadline:
                    stats = shipper.followers()
                    if stats and max(
                        s["acked_lsn"] for s in stats.values()
                    ) >= 3:
                        break
                    time.sleep(0.01)
                assert any(
                    s["acked_lsn"] >= 3 for s in shipper.followers().values()
                )

    def test_leader_restart_reconnect_and_resume(self, leader_home, tmp_path):
        durable, home, data = leader_home
        # Pre-seed the follower's home so it bootstraps locally and its
        # shard workers fork *before* any replication socket exists —
        # forked workers must never inherit (and pin) the leader's port.
        twin, _ = _build()
        write_checkpoint(twin, tmp_path / "follower" / "checkpoints", lsn=0)
        port = _free_port()
        follower = FollowerNode(
            tmp_path / "follower",
            ("127.0.0.1", port),
            n_shards=2,
            reconnect_min=0.02,
            reconnect_max=0.2,
        )
        shipper = None
        try:
            follower.start()  # dials fail until the leader comes up
            shipper = WalShipper(home, port=port, poll_interval=0.01).start()
            durable.insert(_batch(4, seed=90))
            assert follower.wait_for_lsn(1), follower.status()
            dials_before = follower.reconnects
            shipper.stop()  # leader "restarts"
            durable.remove([7])  # committed while the leader was down
            shipper = _restart_shipper(home, port)
            assert follower.wait_for_lsn(2), follower.status()
            assert follower.reconnects > dials_before
            _assert_same_answers(
                durable, follower.service, [data[7], data[50]]
            )
        finally:
            follower.stop()
            if shipper is not None:
                shipper.stop()

    def test_truncated_log_forces_rebootstrap(self, leader_home, tmp_path):
        durable, home, data = leader_home
        twin, _ = _build()
        write_checkpoint(twin, tmp_path / "follower" / "checkpoints", lsn=0)
        port = _free_port()
        follower = FollowerNode(
            tmp_path / "follower",
            ("127.0.0.1", port),
            n_shards=2,
            reconnect_min=0.02,
            reconnect_max=0.2,
        )
        shipper = None
        try:
            follower.start()
            shipper = WalShipper(home, port=port, poll_interval=0.01).start()
            durable.insert(_batch(4, seed=91))
            assert follower.wait_for_lsn(1), follower.status()
            shipper.stop()
            # While the follower is cut off, the leader rotates segments,
            # checkpoints (the acked prefix is pruned) and keeps writing:
            # the follower's position no longer exists in the log.
            for i in range(6):
                durable.insert(_batch(8, seed=92 + i))
            checkpoint_now(durable, home)
            assert list_segments(home / WAL_SUBDIR)[0][0] > 2
            durable.remove([11, 13])
            shipper = _restart_shipper(home, port)
            assert follower.wait_for_lsn(8, timeout=15), follower.status()
            assert follower.bootstraps == 2  # initial + truncation rebuild
            _assert_same_answers(
                durable, follower.service, [data[11], data[60], data[13]]
            )
        finally:
            follower.stop()
            if shipper is not None:
                shipper.stop()

    def test_gap_in_stream_surfaces_typed_wire_error(self, tmp_path):
        # A scripted "leader" ships LSN 5 to a follower expecting LSN 1.
        # The follower must answer with a typed ``wal_gap`` wire error
        # naming both LSNs — never a bare dropped connection.
        index, _data = _build()
        write_checkpoint(
            index, tmp_path / "follower" / "checkpoints", lsn=0
        )
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        server.settimeout(10.0)
        follower = FollowerNode(
            tmp_path / "follower",
            ("127.0.0.1", server.getsockname()[1]),
            n_shards=1,
            reconnect_min=0.02,
        )
        try:
            follower.start()
            conn, _addr = server.accept()
            conn.settimeout(10.0)
            kind, meta, _blob = recv_message(conn)
            assert kind == MSG_HELLO and meta["start_lsn"] == 0
            gapped = WalRecord(lsn=5, op="remove", ids=np.array([3]))
            send_message(
                conn, MSG_WAL, {"lsn": 5}, encode_wal_record(gapped)
            )
            kind, meta, _blob = recv_message(conn)
            assert kind == MSG_ERROR
            assert meta["code"] == "wal_gap"
            assert meta["expected"] == 1
            assert meta["received"] == 5
            conn.close()
        finally:
            follower.stop()
            server.close()

    def test_version_mismatch_rejected_with_typed_error(self, leader_home):
        _durable, home, _data = leader_home
        with WalShipper(home) as shipper:
            sock = socket.create_connection(("127.0.0.1", shipper.port))
            try:
                sock.settimeout(5.0)
                send_message(
                    sock, MSG_HELLO, {"v": 99, "start_lsn": 0}
                )
                kind, meta, _blob = recv_message(sock)
                assert kind == MSG_ERROR
                assert meta["code"] == "cluster_protocol"
            finally:
                sock.close()

    def test_shipper_reports_truncated_position(self, leader_home):
        # A follower resuming from a position the log no longer holds
        # gets the typed error (plus where the log now starts), not a
        # silent empty stream.
        durable, home, _data = leader_home
        for i in range(6):
            durable.insert(_batch(8, seed=70 + i))
        checkpoint_now(durable, home)
        assert list_segments(home / WAL_SUBDIR)[0][0] > 2
        durable.remove([3])
        with WalShipper(home) as shipper:
            sock = socket.create_connection(("127.0.0.1", shipper.port))
            try:
                sock.settimeout(5.0)
                send_message(
                    sock,
                    MSG_HELLO,
                    {
                        "v": PROTOCOL_VERSION,
                        "start_lsn": 1,
                        "need_checkpoint": False,
                    },
                )
                kind, meta, _blob = recv_message(sock)
                assert kind == MSG_ERROR
                assert meta["code"] == "wal_truncated"
                assert meta["first_available"] > 2
            finally:
                sock.close()


# ---------------------------------------------------------------------------
# Router: staleness bounds and failover
# ---------------------------------------------------------------------------


def _post(url, body, timeout=30):
    request = urllib.request.Request(
        url + "/v1/search",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _get(url, path, timeout=10):
    try:
        with urllib.request.urlopen(url + path, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class _LeaderStack:
    """In-process leader: durable writer + self-tailing fleet + door."""

    def __init__(self, home, durable):
        from repro.serve import Frontend, ShardedSearchService

        self.durable = durable
        index, _ = _build()  # deterministic twin of the snapshot
        self.service = ShardedSearchService(index, n_shards=2)
        self.feed = WalFeed(Path(home) / WAL_SUBDIR)
        self.door = Frontend(self.service, port=0).start()
        self.shipper = WalShipper(home, poll_interval=0.01).start()

    def commit(self, fn):
        """Apply a mutation to the durable log and the serving fleet."""
        fn(self.durable)
        self.service.ingest(self.feed.poll())

    def stop(self):
        self.shipper.stop()
        self.door.stop()
        self.service.close()


class TestRouter:
    def test_staleness_bound_and_failover(self, leader_home, tmp_path):
        durable, home, data = leader_home
        leader = _LeaderStack(home, durable)
        follower = FollowerNode(
            tmp_path / "follower",
            ("127.0.0.1", leader.shipper.port),
            n_shards=2,
            http_port=0,
            reconnect_min=0.02,
        )
        router = None
        try:
            follower.start()
            leader.commit(lambda d: d.insert(_batch(6, seed=60)))
            leader.commit(lambda d: d.remove([9]))
            assert follower.wait_for_lsn(2), follower.status()
            router = Router(
                {"leader": leader.door.url, "follower": follower.url},
                leader="leader",
                check_interval=0.05,
                failure_threshold=2,
                probe_timeout=0.5,
            ).start()
            query = data[17].tolist()
            # Default read: the acting leader serves.
            status, payload = _post(
                router.url, {"v": 1, "query": query, "k": K, "p": 1.0}
            )
            assert status == 200 and payload["served_by"] == "leader"
            # A fully caught-up cluster satisfies a zero-staleness bound.
            status, payload = _post(
                router.url,
                {
                    "v": 1, "query": query, "k": K, "p": 1.0,
                    "max_lag_lsn": 0,
                },
            )
            assert status == 200
            # Cut the stream and advance the leader: the follower lags.
            leader.shipper.stop()
            leader.commit(lambda d: d.insert(_batch(3, seed=61)))
            leader.commit(lambda d: d.remove([21]))
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                if router.describe()["commit_lsn"] >= 4:
                    break
                time.sleep(0.02)
            # Bounded reads reject with a typed error when only stale
            # replicas qualify... but the fresh leader still does:
            status, payload = _post(
                router.url,
                {
                    "v": 1, "query": query, "k": K, "p": 1.0,
                    "max_lag_lsn": 0,
                },
            )
            assert status == 200 and payload["served_by"] == "leader"
            # Kill the leader's door: after the health probes notice,
            # the only survivor is 2 records behind the sticky commit
            # point, so a zero-staleness read must fail typed.
            leader.door.stop()
            leader.service.close()
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                report = router.describe()
                if (
                    not report["nodes"]["leader"]["healthy"]
                    and report["acting_leader"] == "follower"
                ):
                    break
                time.sleep(0.05)
            report = router.describe()
            assert report["acting_leader"] == "follower"
            assert report["failovers"] == 1
            assert report["commit_lsn"] >= 4  # sticky: dead leader counts
            status, payload = _post(
                router.url,
                {
                    "v": 1, "query": query, "k": K, "p": 1.0,
                    "max_lag_lsn": 0,
                },
            )
            assert status == 503
            assert payload["error"]["code"] == "stale_read"
            # Unbounded reads fail over to the follower and must be
            # bit-identical to the reference at the follower's LSN (the
            # single-process writer before the cut-off mutations).
            reference, _ = _build()
            for record in WalFeed(Path(home) / WAL_SUBDIR).poll():
                if record.lsn <= follower.acked_lsn:
                    apply_record(reference, record)
            status, payload = _post(
                router.url, {"v": 1, "query": query, "k": K, "p": 1.0}
            )
            assert status == 200 and payload["served_by"] == "follower"
            expected = reference.knn(np.asarray(query), K, p=1.0)
            assert payload["ids"] == expected.ids.tolist()
            assert payload["distances"] == pytest.approx(
                expected.distances.tolist()
            )
        finally:
            if router is not None:
                router.stop()
            follower.stop()
            leader.stop()

    def test_router_health_and_cluster_endpoints(self, leader_home, tmp_path):
        durable, home, _data = leader_home
        leader = _LeaderStack(home, durable)
        try:
            router = Router(
                {"leader": leader.door.url},
                leader="leader",
                check_interval=0.05,
                probe_timeout=0.5,
            ).start()
            try:
                status, report = _get(router.url, "/v1/health")
                assert status == 200 and report["healthy"] is True
                status, report = _get(router.url, "/v1/cluster")
                assert report["configured_leader"] == "leader"
                assert report["acting_leader"] == "leader"
                assert sorted(report["slots"]) == sorted(
                    str(s) for s in range(report["n_slots"])
                )
                assert set(report["slots"].values()) == {"leader"}
                status, body = _get(router.url, "/v1/nope")
                assert status == 404 and body["error"]["code"] == "not_found"
                # Malformed and invalid requests reject at the edge with
                # the same taxonomy the single-node door uses.
                status, body = _post(
                    router.url, {"v": 1, "query": [1.0] * 10, "k": 0}
                )
                assert status == 400
                status, body = _post(
                    router.url,
                    {
                        "v": 1, "query": [1.0] * 10, "k": K, "p": 1.0,
                        "max_lag_lsn": -3,
                    },
                )
                assert status == 400
                assert body["error"]["code"] == "invalid_parameter"
            finally:
                router.stop()
        finally:
            leader.stop()


# ---------------------------------------------------------------------------
# SIGKILL'd leader process: crash failover (the acceptance scenario)
# ---------------------------------------------------------------------------


def _leader_process_main(home, ports_path):
    """Run a full leader node: durable writer + fleet + door + shipper."""
    from repro.durability import recover
    from repro.serve import Frontend, ShardedSearchService

    durable, _report = recover(home, sync=False)
    index, _ = _build()
    service = ShardedSearchService(index, n_shards=1)
    feed = WalFeed(Path(home) / WAL_SUBDIR)
    door = Frontend(service, port=0).start()
    shipper = WalShipper(home, poll_interval=0.01).start()
    Path(ports_path).write_text(
        json.dumps({"http": door.url, "ship": shipper.port})
    )
    lsn = 0
    while True:  # keep committing until SIGKILL'd
        lsn += 1
        if lsn % 5 == 0:
            durable.remove([lsn])
        else:
            durable.insert(_batch(2, seed=1000 + lsn))
        service.ingest(feed.poll())
        time.sleep(0.01 if lsn < 30 else 0.25)


class TestCrashFailover:
    def test_sigkilled_leader_fails_over_bit_identically(self, tmp_path):
        index, data = _build()
        home = tmp_path / "leader"
        create(index, home, sync=False).close()
        ports_path = tmp_path / "ports.json"
        ctx = mp.get_context("fork")
        child = ctx.Process(
            target=_leader_process_main,
            args=(home, ports_path),
            daemon=False,
        )
        child.start()
        follower = router = None
        try:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline and not ports_path.exists():
                time.sleep(0.02)
            ports = json.loads(ports_path.read_text())
            follower = FollowerNode(
                tmp_path / "follower",
                ("127.0.0.1", ports["ship"]),
                n_shards=1,
                http_port=0,
                reconnect_min=0.02,
            ).start()
            assert follower.wait_for_lsn(20, timeout=30), follower.status()
            router = Router(
                {"leader": ports["http"], "follower": follower.url},
                leader="leader",
                check_interval=0.05,
                failure_threshold=2,
                probe_timeout=0.25,
                proxy_timeout=1.0,
            ).start()
            query = data[33].tolist()
            status, payload = _post(router.url, {
                "v": 1, "query": query, "k": K, "p": 1.0,
            })
            assert status == 200 and payload["served_by"] == "leader"
            os.kill(child.pid, signal.SIGKILL)
            child.join(timeout=10)
            # The router must fail over to the follower: keep asking
            # until an answer lands (bounded), then check identity.
            answer = None
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                status, payload = _post(
                    router.url,
                    {"v": 1, "query": query, "k": K, "p": 1.0},
                    timeout=5,
                )
                if status == 200:
                    answer = payload
                    break
                assert status in (502, 503)
                assert payload["error"]["code"] in (
                    "unavailable", "internal"
                )
                time.sleep(0.1)
            assert answer is not None, "no answer after leader SIGKILL"
            assert answer["served_by"] == "follower"
            assert router.describe()["acting_leader"] == "follower"
            assert router.failovers >= 1
            # Bit-identity: replay the leader's durable WAL up to the
            # follower's acked LSN onto a fresh twin of the snapshot.
            acked = follower.acked_lsn
            assert acked >= 20
            reference, _ = _build()
            for record in WalFeed(home / WAL_SUBDIR).poll():
                if record.lsn <= acked:
                    apply_record(reference, record)
            expected = reference.knn(np.asarray(query), K, p=1.0)
            assert answer["ids"] == expected.ids.tolist()
            assert answer["distances"] == pytest.approx(
                expected.distances.tolist()
            )
            _assert_same_answers(
                reference,
                follower.service,
                [data[3], data[150], np.full(10, 42.0)],
            )
        finally:
            if router is not None:
                router.stop()
            if follower is not None:
                follower.stop()
            if child.is_alive():
                child.kill()
                child.join(timeout=10)
