"""Smoke tests ensuring the example scripts stay importable and their
helper functions work against the current API.

Full example runs take minutes; these tests execute the cheap pieces and
verify each script at least parses, imports cleanly and exposes a
``main`` entry point.
"""

import ast
import importlib.util
import sys
from pathlib import Path

import numpy as np
import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load_module(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_exist(self):
        names = {path.name for path in EXAMPLE_FILES}
        assert "quickstart.py" in names
        assert len(names) >= 4  # quickstart + >= 3 scenario examples

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_parses_and_has_main(self, path):
        tree = ast.parse(path.read_text())
        func_names = {
            node.name for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
        }
        assert "main" in func_names
        # Guarded entry point so pytest/imports never trigger a full run.
        assert '__name__ == "__main__"' in path.read_text()

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_imports_cleanly(self, path):
        module = _load_module(path)
        assert callable(module.main)

    def test_clustering_helpers(self):
        import networkx as nx

        module = _load_module(EXAMPLES_DIR / "knn_graph_clustering.py")
        graph = nx.DiGraph()
        graph.add_edge(0, 1)
        graph.add_edge(1, 0)
        graph.add_edge(2, 3)
        graph.add_edge(3, 2)
        labels = np.array([0, 0, 1, 0])
        purity = module.cluster_purity(graph, labels)
        # Component {0,1} pure (1.0); component {2,3} half (0.5).
        assert purity == pytest.approx(0.75)

    def test_metric_selection_evaluate_one_dataset(self):
        module = _load_module(EXAMPLES_DIR / "metric_selection.py")
        row = module.evaluate_dataset("bcw")
        assert row[0] == "bcw"
        # exact accuracy + six metric accuracies + best metric label.
        assert len(row) == 2 + len(module.P_VALUES) + 1
        assert row[-1].startswith("l")
