"""End-to-end probabilistic-guarantee tests (properties P1' and P2').

These exercise the full index on repeated randomised workloads and check
the two properties Algorithm 3/4's correctness rests on:

* P1': a point inside ``Bp(q, delta)`` becomes a candidate (collides more
  than ``theta_p`` times) with probability at least ``1 - epsilon``;
* P2': no more than ``beta * n`` far points become candidates (in
  expectation, modulo constant factors).
"""

import numpy as np
import pytest

from repro import LazyLSH, LazyLSHConfig
from repro.datasets import exact_knn, make_synthetic, sample_queries
from repro.metrics.lp import lp_distance


@pytest.fixture(scope="module")
def guarantee_setup():
    data = make_synthetic(800, 12, value_range=(0, 400), seed=101)
    split = sample_queries(data, n_queries=10, seed=102)
    cfg = LazyLSHConfig(
        c=3.0,
        p_min=0.6,
        epsilon=0.05,
        seed=103,
        mc_samples=20_000,
        mc_buckets=80,
    )
    index = LazyLSH(cfg).build(split.data)
    return index, split


class TestApproximationGuarantee:
    @pytest.mark.parametrize("p", [0.6, 0.8, 1.0])
    def test_c_approximation_holds_per_rank(self, guarantee_setup, p):
        # Definition 5: the i-th reported neighbour is a c-approximation
        # of the i-th true neighbour, for every rank.
        index, split = guarantee_setup
        k = 10
        _, true_dists = exact_knn(split.data, split.queries, k, p)
        violations = 0
        total = 0
        for qi, query in enumerate(split.queries):
            result = index.knn(query, k, p=p)
            for rank in range(k):
                total += 1
                if result.distances[rank] > index.config.c * true_dists[qi, rank]:
                    violations += 1
        # The guarantee is probabilistic (epsilon = 0.05 per query); give
        # generous slack but catch systematic failures.
        assert violations / total < 0.05

    def test_candidate_budget_respected(self, guarantee_setup):
        # P2'-flavoured check: queries never examine wildly more
        # candidates than the k + beta*n budget (Algorithm 4's stop rule
        # may overshoot by at most one hash-function batch).
        index, split = guarantee_setup
        n = index.num_points
        k = 10
        cap = k + index.beta * n
        for query in split.queries:
            result = index.knn(query, k, p=1.0)
            assert result.candidates <= cap + n * 0.1

    def test_random_io_equals_candidates(self, guarantee_setup):
        # Every candidate costs exactly one random I/O, never more.
        index, split = guarantee_setup
        for query in split.queries[:4]:
            result = index.knn(query, 5, p=0.8)
            assert result.io.random == result.candidates


class TestThetaCalibration:
    def test_near_neighbours_cross_threshold(self, guarantee_setup):
        # The true nearest neighbour should be among the candidates in
        # nearly every query (this is what P1' promises).
        index, split = guarantee_setup
        found = 0
        for query in split.queries:
            true_ids, _ = exact_knn(split.data, query, 1, 0.8)
            result = index.knn(query, 10, p=0.8)
            if true_ids[0, 0] in result.ids:
                found += 1
        assert found >= 8  # 10 queries, epsilon = 0.05 plus slack

    def test_reported_distances_match_recomputation(self, guarantee_setup):
        index, split = guarantee_setup
        for p in (0.6, 1.0):
            result = index.knn(split.queries[0], 5, p=p)
            recomputed = lp_distance(index.data[result.ids], split.queries[0], p)
            np.testing.assert_allclose(result.distances, recomputed)
