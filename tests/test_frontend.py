"""Tests for the async HTTP front door (repro.serve.frontend).

Pins the front door's three contracts (DESIGN §14):

* **Coalescing identity** — concurrent HTTP requests (duplicates,
  shared-query-point/different-``p``, singletons) return ids/distances
  bit-identical to issuing each alone through
  ``ShardedSearchService.search``.
* **Cache semantics** — a repeat request is served without any index
  scan (``queries_served`` does not move), and a WAL epoch bump through
  ``Frontend.ingest`` invalidates the entry so the next answer sees the
  new data.
* **Wire behaviour** — the v1 codec and error taxonomy over real HTTP:
  400 on malformed/invalid requests, 404/405 on bad routes, 429 under
  admission overload, 503 when the fleet is unhealthy, deadline
  stamping from arrival time.
"""

import json
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import LazyLSH, LazyLSHConfig, ShardedSearchService
from repro.durability import WalRecord
from repro.serve import Frontend
from repro.serve.frontend import HTTP_STATUS_BY_CODE, error_body

K = 5
METRICS = (0.5, 0.8, 1.0)


def _post(url: str, body, raw: bytes | None = None) -> tuple[int, dict]:
    data = raw if raw is not None else json.dumps(body).encode()
    request = urllib.request.Request(
        url + "/v1/search", data=data,
        headers={"Content-Type": "application/json"}, method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _get(url: str, path: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url + path, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.fixture(scope="module")
def stack():
    """A small built index behind a sharded service and a front door.

    Module-private (not the session ``built_index``): the invalidation
    test ingests WAL records, which mutates the coordinator's index.
    """
    rng = np.random.default_rng(5)
    data = rng.uniform(0.0, 100.0, (400, 10))
    index = LazyLSH(
        LazyLSHConfig(
            c=3.0, p_min=0.5, seed=9, mc_samples=20_000, mc_buckets=100
        )
    ).build(data)
    with ShardedSearchService(index, n_shards=2) as service:
        with Frontend(service, coalesce_ms=5.0, cache_capacity=64) as door:
            yield data, service, door


class TestCoalescingIdentity:
    def test_single_request_matches_service(self, stack):
        data, service, door = stack
        status, payload = _post(
            door.url, {"v": 1, "query": data[3].tolist(), "k": K, "p": 0.8}
        )
        assert status == 200
        assert payload["v"] == 1
        reference = service.search(data[3], K, p=0.8)
        assert payload["ids"] == [int(i) for i in reference.ids]
        assert payload["distances"] == [float(d) for d in reference.distances]

    def test_concurrent_mixed_burst_is_bit_identical(self, stack):
        data, service, door = stack
        shared = data[7].tolist()
        bodies = [
            {"v": 1, "query": shared, "k": K, "p": p} for p in METRICS
        ]
        bodies += [
            {"v": 1, "query": data[11].tolist(), "k": K, "p": 1.0},
            {"v": 1, "query": data[11].tolist(), "k": K, "p": 1.0},
            {"v": 1, "query": data[13].tolist(), "k": K, "p": 0.5},
            {"v": 1, "query": data[17].tolist(), "k": K, "p": 1.0},
        ]
        with ThreadPoolExecutor(max_workers=len(bodies)) as pool:
            responses = list(
                pool.map(lambda b: _post(door.url, b), bodies)
            )
        for body, (status, payload) in zip(bodies, responses):
            assert status == 200, payload
            reference = service.search(
                np.asarray(body["query"]), body["k"], p=body["p"]
            )
            assert payload["ids"] == [int(i) for i in reference.ids]
            assert payload["distances"] == [
                float(d) for d in reference.distances
            ]
        # The shared-point burst must actually have shared work.
        coalesced = sum(
            payload.get("coalesced") or payload.get("cached")
            for _, payload in responses
        )
        assert coalesced >= len(METRICS)

    def test_request_id_echoed(self, stack):
        data, _service, door = stack
        status, payload = _post(
            door.url,
            {
                "v": 1, "query": data[19].tolist(), "k": K, "p": 1.0,
                "request_id": "feedc0de",
            },
        )
        assert status == 200
        assert payload["request_id"] == "feedc0de"


class TestResultCache:
    def test_repeat_request_served_without_scan(self, stack):
        data, service, door = stack
        body = {"v": 1, "query": data[23].tolist(), "k": K, "p": 0.8}
        status, first = _post(door.url, body)
        assert status == 200 and first["cached"] is False
        before = service.queries_served
        hits_before = door._m_cache_hits.total()
        status, second = _post(door.url, body)
        assert status == 200 and second["cached"] is True
        assert service.queries_served == before  # no wave ran
        assert door._m_cache_hits.total() == hits_before + 1
        assert second["ids"] == first["ids"]
        assert second["distances"] == first["distances"]

    def test_wal_epoch_bump_invalidates(self, stack):
        data, service, door = stack
        query = data[29] + 0.5  # held out: not an indexed point
        body = {"v": 1, "query": query.tolist(), "k": K, "p": 1.0}
        status, first = _post(door.url, body)
        assert status == 200
        status, cached = _post(door.url, body)
        assert status == 200 and cached["cached"] is True
        # Insert the query point itself: the new nearest neighbour.
        new_id = service.index.num_rows
        epoch_before = service.epoch
        applied = door.ingest([
            WalRecord(
                lsn=service.acked_lsn + 1,
                op="insert",
                ids=np.array([new_id], dtype=np.int64),
                points=query[None, :].copy(),
            )
        ])
        assert applied == 1
        assert service.epoch == epoch_before + 1
        before = service.queries_served
        status, refreshed = _post(door.url, body)
        assert status == 200
        assert refreshed["cached"] is False  # entry was invalidated
        assert service.queries_served > before  # a real wave ran
        assert refreshed["ids"][0] == new_id
        assert refreshed["distances"][0] == 0.0
        reference = service.search(query, K, p=1.0)
        assert refreshed["ids"] == [int(i) for i in reference.ids]
        assert refreshed["distances"] == [
            float(d) for d in reference.distances
        ]


class TestAdmissionControl:
    def test_overload_sheds_with_429(self, stack):
        data, service, _door = stack
        with Frontend(
            service, coalesce_ms=150.0, max_pending=1, cache_capacity=0
        ) as tight:
            bodies = [
                {"v": 1, "query": data[i].tolist(), "k": K, "p": 1.0}
                for i in range(6)
            ]
            with ThreadPoolExecutor(max_workers=len(bodies)) as pool:
                responses = list(
                    pool.map(lambda b: _post(tight.url, b), bodies)
                )
        statuses = sorted(status for status, _ in responses)
        assert 429 in statuses, statuses
        assert 200 in statuses, statuses
        for status, payload in responses:
            if status == 429:
                assert payload["error"]["code"] == "overloaded"
            else:
                assert status == 200
        assert tight._m_rejected.total() == statuses.count(429)

    def test_deadline_stamped_from_arrival(self, stack):
        data, _service, door = stack
        status, payload = _post(
            door.url,
            {
                "v": 1, "query": data[31].tolist(), "k": K, "p": 1.0,
                "deadline_ms": 0.001,
            },
        )
        assert status == 200
        assert payload["deadline_exceeded"] is True

    def test_unhealthy_service_returns_503(self, stack):
        data, service, door = stack
        service._closed = True  # simulate a dead fleet, no real teardown
        try:
            status, payload = _post(
                door.url,
                {"v": 1, "query": data[2].tolist(), "k": K, "p": 1.0},
            )
        finally:
            service._closed = False
        assert status == 503
        assert payload["error"]["code"] == "unhealthy"


class TestMidFailover:
    """The door during a fleet failover: fail fast, typed, no hangs."""

    def test_health_and_admission_go_503_while_unhealthy(
        self, stack, monkeypatch
    ):
        data, service, door = stack
        report = dict(service.health(), healthy=False)
        monkeypatch.setattr(service, "health", lambda: report)
        status, body = _get(door.url, "/v1/health")
        assert status == 503
        assert body["healthy"] is False
        status, body = _post(
            door.url,
            {"v": 1, "query": np.full(10, 41.5).tolist(), "k": K, "p": 1.0},
        )
        assert status == 503
        assert body["error"]["code"] == "unavailable"
        assert "retry" in body["error"]["message"]

    def test_failover_mid_flight_bounded_by_deadline(
        self, stack, monkeypatch
    ):
        # The fleet goes down *after* admission while the wave is stuck
        # in the planner.  The client holds a deadline; the door must
        # answer a typed ``unavailable`` error within a few poll
        # intervals of it — never hang on the dead fleet.
        import threading
        import time

        _data, service, door = stack
        real_health = type(service).health
        real_search = type(service).search_batch
        release = threading.Event()
        calls = {"n": 0}

        def failing_health():
            calls["n"] += 1
            report = real_health(service)
            if calls["n"] > 1:  # healthy at admission, dead afterwards
                report["healthy"] = False
            return report

        def stuck_search(*args, **kwargs):
            release.wait(10.0)
            return real_search(service, *args, **kwargs)

        monkeypatch.setattr(service, "health", failing_health)
        monkeypatch.setattr(service, "search_batch", stuck_search)
        try:
            start = time.monotonic()
            status, body = _post(
                door.url,
                {
                    "v": 1, "query": np.full(10, 63.25).tolist(), "k": K,
                    "p": 1.0, "deadline_ms": 200.0,
                },
            )
            elapsed = time.monotonic() - start
        finally:
            release.set()
        assert status == 503
        assert body["error"]["code"] == "unavailable"
        assert elapsed < 5.0  # deadline-paced polls, not the 10 s stall


class TestWireErrors:
    def test_malformed_json_is_400(self, stack):
        _data, _service, door = stack
        status, payload = _post(door.url, None, raw=b"{not json")
        assert status == 400
        assert payload["error"]["code"] == "wire_format"

    def test_unknown_key_is_400(self, stack):
        data, _service, door = stack
        status, payload = _post(
            door.url,
            {"v": 1, "query": data[0].tolist(), "k": K, "K": 2},
        )
        assert status == 400
        assert payload["error"]["code"] == "wire_format"

    def test_domain_error_is_400(self, stack):
        data, _service, door = stack
        status, payload = _post(
            door.url, {"v": 1, "query": data[0].tolist(), "k": 0}
        )
        assert status == 400
        assert payload["error"]["code"] == "invalid_parameter"

    def test_metrics_list_is_rejected(self, stack):
        data, _service, door = stack
        status, payload = _post(
            door.url,
            {"v": 1, "query": data[0].tolist(), "k": K,
             "metrics": [0.5, 1.0]},
        )
        assert status == 400
        assert payload["error"]["code"] == "invalid_parameter"

    def test_unknown_path_is_404_and_wrong_method_405(self, stack):
        _data, _service, door = stack
        status, payload = _get(door.url, "/v2/search")
        assert status == 404
        assert payload["error"]["code"] == "not_found"
        status, payload = _get(door.url, "/v1/search")
        assert status == 405
        assert payload["error"]["code"] == "method_not_allowed"

    def test_status_map_covers_every_taxonomy_class(self):
        import repro.errors as errors

        assert error_body("x", "y")["error"]["code"] == "x"
        for name in dir(errors):
            obj = getattr(errors, name)
            if (
                isinstance(obj, type)
                and issubclass(obj, errors.ReproError)
                and obj is not errors.ReproError
            ):
                status = HTTP_STATUS_BY_CODE.get(obj.code, 500)
                assert 400 <= status <= 599


class TestOpsEndpoints:
    def test_health_and_stats(self, stack):
        _data, service, door = stack
        status, report = _get(door.url, "/v1/health")
        assert status == 200 and report["healthy"] is True
        status, stats = _get(door.url, "/v1/stats")
        assert status == 200
        assert stats["scans"] >= 1
        assert stats["cache"]["hits"] >= 1
        assert 0.0 <= stats["cache"]["hit_rate"] <= 1.0
        assert stats["coalesce_ratio"] >= 1.0
        assert stats["service"]["n_shards"] == service.n_shards

    def test_stats_python_api_matches_metrics(self, stack):
        _data, _service, door = stack
        stats = door.stats()
        assert stats["cache"]["hits"] == int(door._m_cache_hits.total())
        assert stats["scans"] == int(door._m_waves.total())
