"""Tests for index save/load round-trips."""

import numpy as np
import pytest

from repro import LazyLSH, LazyLSHConfig
from repro.datasets import make_synthetic
from repro.errors import IndexNotBuiltError, InvalidParameterError
from repro.persistence import (
    FORMAT_VERSION,
    IndexFormatError,
    load_index,
    read_header,
    save_index,
)


class TestRoundTrip:
    def test_identical_query_results(self, built_index, small_split, tmp_path):
        path = save_index(built_index, tmp_path / "index.npz")
        restored = load_index(path)
        for p in (0.5, 0.8, 1.0):
            original = built_index.knn(small_split.queries[0], 10, p=p)
            loaded = restored.knn(small_split.queries[0], 10, p=p)
            np.testing.assert_array_equal(original.ids, loaded.ids)
            np.testing.assert_allclose(original.distances, loaded.distances)
            assert original.io.total == loaded.io.total

    def test_metadata_preserved(self, built_index, small_split, tmp_path):
        path = save_index(built_index, tmp_path / "index.npz")
        restored = load_index(path)
        assert restored.eta == built_index.eta
        assert restored.beta == built_index.beta
        assert restored.config == built_index.config
        assert restored.num_points == built_index.num_points
        assert restored.index_size_mb() == built_index.index_size_mb()

    def test_suffix_appended(self, built_index, tmp_path):
        path = save_index(built_index, tmp_path / "index")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_range_query_round_trip(self, built_index, small_split, tmp_path):
        path = save_index(built_index, tmp_path / "index.npz")
        restored = load_index(path)
        query = small_split.queries[1]
        a = built_index.range_query(query, 50.0, 1.0)
        b = restored.range_query(query, 50.0, 1.0)
        assert a.found == b.found
        assert a.point_id == b.point_id


class TestTombstoneRoundTrip:
    @pytest.fixture
    def mutated_index(self):
        data = make_synthetic(300, 10, value_range=(0, 200), seed=21)
        cfg = LazyLSHConfig(
            c=3.0, p_min=0.7, seed=22, mc_samples=10_000, mc_buckets=60
        )
        index = LazyLSH(cfg).build(data)
        index.remove([4, 9, 250])
        index.insert(
            np.random.default_rng(23).uniform(0, 200, size=(6, 10))
        )
        return index, data

    def test_live_set_preserved(self, mutated_index, tmp_path):
        index, _data = mutated_index
        path = save_index(index, tmp_path / "dyn.npz")
        restored = load_index(path)
        assert restored.num_points == index.num_points
        assert restored.num_rows == index.num_rows
        np.testing.assert_array_equal(restored._alive, index._alive)

    def test_header_carries_live_count(self, mutated_index, tmp_path):
        index, _data = mutated_index
        path = save_index(index, tmp_path / "dyn.npz", wal_lsn=17, wal_epoch=3)
        header = read_header(path)
        assert header["format_version"] == FORMAT_VERSION
        assert header["live_count"] == index.num_points
        assert header["wal_lsn"] == 17
        assert header["wal_epoch"] == 3

    def test_knn_identical_after_round_trip(self, mutated_index, tmp_path):
        index, data = mutated_index
        path = save_index(index, tmp_path / "dyn.npz")
        restored = load_index(path)
        for query in (data[4], data[100], np.full(10, 50.0)):
            a = index.knn(query, 5, p=1.0)
            b = restored.knn(query, 5, p=1.0)
            np.testing.assert_array_equal(a.ids, b.ids)
            np.testing.assert_array_equal(a.distances, b.distances)
            assert 4 not in b.ids and 9 not in b.ids

    def test_corrupt_live_count_rejected(self, mutated_index, tmp_path):
        import json

        index, _data = mutated_index
        path = save_index(index, tmp_path / "dyn.npz")
        with np.load(path) as archive:
            fields = {name: archive[name] for name in archive.files}
        header = json.loads(fields["header"].tobytes().decode())
        header["live_count"] = header["live_count"] + 1
        fields["header"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        np.savez(path, **fields)
        with pytest.raises(IndexFormatError, match="live rows"):
            load_index(path)


class TestErrors:
    def test_unbuilt_index_rejected(self, small_config, tmp_path):
        with pytest.raises(IndexNotBuiltError):
            save_index(LazyLSH(small_config), tmp_path / "x.npz")

    def test_missing_file(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            load_index(tmp_path / "nope.npz")

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(IndexFormatError):
            load_index(path)

    def test_tampered_header_rejected(self, built_index, tmp_path):
        import json

        path = save_index(built_index, tmp_path / "index.npz")
        with np.load(path) as archive:
            fields = {name: archive[name] for name in archive.files}
        header = json.loads(fields["header"].tobytes().decode())
        header["format_version"] = 999
        fields["header"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        np.savez(path, **fields)
        with pytest.raises(
            IndexFormatError,
            match=r"uses format version 999; this library reads versions",
        ):
            load_index(path)

    def test_version_1_headers_still_load(self, built_index, tmp_path):
        import json

        path = save_index(built_index, tmp_path / "index.npz")
        with np.load(path) as archive:
            fields = {name: archive[name] for name in archive.files}
        header = json.loads(fields["header"].tobytes().decode())
        # Strip the v2 fields to simulate a pre-durability snapshot.
        header["format_version"] = 1
        for key in ("wal_lsn", "wal_epoch", "live_count"):
            header.pop(key, None)
        fields["header"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        np.savez(path, **fields)
        restored = load_index(path)
        assert restored.num_points == built_index.num_points
        assert read_header(path)["wal_lsn"] == 0
