"""Tests for index save/load round-trips."""

import numpy as np
import pytest

from repro import LazyLSH
from repro.errors import IndexNotBuiltError, InvalidParameterError
from repro.persistence import IndexFormatError, load_index, save_index


class TestRoundTrip:
    def test_identical_query_results(self, built_index, small_split, tmp_path):
        path = save_index(built_index, tmp_path / "index.npz")
        restored = load_index(path)
        for p in (0.5, 0.8, 1.0):
            original = built_index.knn(small_split.queries[0], 10, p)
            loaded = restored.knn(small_split.queries[0], 10, p)
            np.testing.assert_array_equal(original.ids, loaded.ids)
            np.testing.assert_allclose(original.distances, loaded.distances)
            assert original.io.total == loaded.io.total

    def test_metadata_preserved(self, built_index, small_split, tmp_path):
        path = save_index(built_index, tmp_path / "index.npz")
        restored = load_index(path)
        assert restored.eta == built_index.eta
        assert restored.beta == built_index.beta
        assert restored.config == built_index.config
        assert restored.num_points == built_index.num_points
        assert restored.index_size_mb() == built_index.index_size_mb()

    def test_suffix_appended(self, built_index, tmp_path):
        path = save_index(built_index, tmp_path / "index")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_range_query_round_trip(self, built_index, small_split, tmp_path):
        path = save_index(built_index, tmp_path / "index.npz")
        restored = load_index(path)
        query = small_split.queries[1]
        a = built_index.range_query(query, 50.0, 1.0)
        b = restored.range_query(query, 50.0, 1.0)
        assert a.found == b.found
        assert a.point_id == b.point_id


class TestErrors:
    def test_unbuilt_index_rejected(self, small_config, tmp_path):
        with pytest.raises(IndexNotBuiltError):
            save_index(LazyLSH(small_config), tmp_path / "x.npz")

    def test_missing_file(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            load_index(tmp_path / "nope.npz")

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(IndexFormatError):
            load_index(path)

    def test_tampered_header_rejected(self, built_index, tmp_path):
        import json

        path = save_index(built_index, tmp_path / "index.npz")
        with np.load(path) as archive:
            fields = {name: archive[name] for name in archive.files}
        header = json.loads(fields["header"].tobytes().decode())
        header["format_version"] = 999
        fields["header"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        np.savez(path, **fields)
        with pytest.raises(IndexFormatError):
            load_index(path)
