"""Property-based tests (hypothesis) on the core invariants.

These cover the mathematical backbone the paper's guarantees stand on:
norm identities, the Eq. 11 bounds, Lemma 2/3 scale invariance, window
arithmetic and page accounting.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.hashing import original_window, query_centric_window
from repro.eval.ratio import overall_ratio
from repro.metrics.collision import collision_probability
from repro.metrics.lp import l1_bounds, lp_distance, lp_norm, norm_equivalence_bounds
from repro.storage.pages import PageLayout

# Strategies ---------------------------------------------------------------

# Coordinates are either exactly zero or of sane magnitude: denormal
# inputs (1e-190 and the like) underflow any fractional power round-trip
# and are outside the library's supported domain.
_coords = st.one_of(
    st.just(0.0),
    st.floats(min_value=1e-3, max_value=100.0),
    st.floats(min_value=-100.0, max_value=-1e-3),
)

finite_vectors = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=12),
    elements=_coords,
)

p_values = st.sampled_from([0.4, 0.5, 0.7, 1.0, 1.3, 2.0])


def paired_vectors():
    return st.integers(min_value=1, max_value=12).flatmap(
        lambda d: st.tuples(
            hnp.arrays(
                np.float64,
                d,
                elements=st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
            ),
            hnp.arrays(
                np.float64,
                d,
                elements=st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
            ),
        )
    )


# lp geometry ---------------------------------------------------------------


class TestLpProperties:
    @given(v=finite_vectors, p=p_values)
    def test_norm_non_negative(self, v, p):
        assert lp_norm(v, p) >= 0.0

    @given(v=finite_vectors, p=p_values)
    def test_norm_zero_iff_zero_vector(self, v, p):
        norm = float(lp_norm(v, p))
        if np.all(v == 0.0):
            assert norm == 0.0
        else:
            assert norm > 0.0

    @given(pair=paired_vectors(), p=p_values)
    def test_distance_symmetry(self, pair, p):
        x, y = pair
        assert float(lp_distance(x, y, p)) == pytest.approx(
            float(lp_distance(y, x, p)), rel=1e-9, abs=1e-12
        )

    @given(
        pair=paired_vectors(),
        p=p_values,
        scale=st.floats(min_value=0.01, max_value=100.0),
    )
    def test_homogeneity_lemma3(self, pair, p, scale):
        # lp(c*x, c*y) == c * lp(x, y): the identity behind Lemma 3.
        x, y = pair
        base = float(lp_distance(x, y, p))
        scaled = float(lp_distance(scale * x, scale * y, p))
        assert scaled == pytest.approx(scale * base, rel=1e-7, abs=1e-9)

    @given(pair=paired_vectors())
    def test_triangle_inequality_holds_for_p_geq_1(self, pair):
        x, y = pair
        origin = np.zeros_like(x)
        for p in (1.0, 1.5, 2.0):
            direct = float(lp_distance(x, y, p))
            via = float(lp_distance(x, origin, p)) + float(lp_distance(origin, y, p))
            assert direct <= via + 1e-7 * max(1.0, via)

    @given(pair=paired_vectors(), p=st.sampled_from([0.4, 0.5, 0.7, 0.9]))
    def test_fractional_distance_at_least_l1(self, pair, p):
        # For 0 < p < 1 the lp "distance" dominates l1.
        x, y = pair
        assert float(lp_distance(x, y, p)) >= float(lp_distance(x, y, 1.0)) - 1e-9


class TestBoundsProperties:
    @given(pair=paired_vectors(), p=p_values)
    def test_eq11_bounds_always_contain_l1(self, pair, p):
        x, y = pair
        d = x.shape[0]
        delta = float(lp_distance(x, y, p))
        lower, upper = l1_bounds(delta, d, p)
        l1 = float(lp_distance(x, y, 1.0))
        tol = 1e-9 * max(1.0, upper)
        assert lower - tol <= l1 <= upper + tol

    @given(pair=paired_vectors(), p=p_values, s=st.sampled_from([1.0, 2.0]))
    def test_generalised_bounds_contain_ls(self, pair, p, s):
        x, y = pair
        d = x.shape[0]
        delta = float(lp_distance(x, y, p))
        lower, upper = norm_equivalence_bounds(delta, d, p, s)
        ls = float(lp_distance(x, y, s))
        tol = 1e-9 * max(1.0, upper)
        assert lower - tol <= ls <= upper + tol

    @given(
        d=st.integers(min_value=1, max_value=2000),
        p=p_values,
        delta=st.floats(min_value=0.0, max_value=1e6),
    )
    def test_bounds_ordered(self, d, p, delta):
        lower, upper = l1_bounds(delta, d, p)
        assert 0.0 <= lower <= upper


class TestCollisionProperties:
    @given(
        s=st.floats(min_value=0.001, max_value=100.0),
        r0=st.floats(min_value=0.001, max_value=100.0),
        scale=st.floats(min_value=0.01, max_value=100.0),
        p=st.sampled_from([1.0, 2.0]),
    )
    def test_lemma2_scale_invariance(self, s, r0, scale, p):
        assert collision_probability(s, r0, p) == pytest.approx(
            collision_probability(s * scale, r0 * scale, p), rel=1e-6, abs=1e-9
        )

    @given(
        s=st.floats(min_value=0.0, max_value=1000.0),
        r0=st.floats(min_value=0.001, max_value=1000.0),
        p=st.sampled_from([1.0, 2.0]),
    )
    def test_probability_in_unit_interval(self, s, r0, p):
        val = collision_probability(s, r0, p)
        assert -1e-12 <= val <= 1.0 + 1e-12


class TestWindowProperties:
    @given(
        hq=st.integers(min_value=-(10**6), max_value=10**6),
        level=st.floats(min_value=0.0, max_value=1e6),
    )
    def test_query_centric_contains_query_symmetrically(self, hq, level):
        lo, hi = query_centric_window(hq, level)
        assert lo <= hq <= hi
        assert hq - lo == hi - hq

    @given(
        hq=st.integers(min_value=-(10**6), max_value=10**6),
        level=st.floats(min_value=1.0, max_value=1e6),
    )
    def test_original_contains_query(self, hq, level):
        lo, hi = original_window(hq, level)
        assert lo <= hq <= hi
        assert hi - lo + 1 == max(1, int(math.floor(level)))

    @given(
        hq=st.integers(min_value=-(10**4), max_value=10**4),
        level=st.floats(min_value=1.0, max_value=1e4),
        factor=st.integers(min_value=2, max_value=5),
    )
    def test_query_centric_windows_nest(self, hq, level, factor):
        inner = query_centric_window(hq, level)
        outer = query_centric_window(hq, level * factor)
        assert outer[0] <= inner[0] and inner[1] <= outer[1]


class TestPageProperties:
    @given(
        start=st.integers(min_value=0, max_value=10**6),
        length=st.integers(min_value=0, max_value=10**5),
        entry_size=st.sampled_from([4, 8, 16, 64]),
    )
    def test_page_count_bounds(self, start, length, entry_size):
        layout = PageLayout(page_size=4096, entry_size=entry_size)
        pages = layout.pages_for_range(start, start + length)
        per_page = layout.entries_per_page
        if length == 0:
            assert pages == 0
        else:
            minimum = -(-length // per_page)
            assert minimum <= pages <= minimum + 1

    @given(
        start=st.integers(min_value=0, max_value=10**5),
        split=st.integers(min_value=0, max_value=10**4),
        length=st.integers(min_value=0, max_value=10**4),
    )
    def test_splitting_a_range_never_cheaper(self, start, split, length):
        # Reading [a, b) as two pieces costs at least the contiguous read.
        layout = PageLayout()
        mid = start + min(split, length)
        stop = start + length
        whole = layout.pages_for_range(start, stop)
        pieces = layout.pages_for_range(start, mid) + layout.pages_for_range(mid, stop)
        assert pieces >= whole


class TestRatioProperties:
    @given(
        true=hnp.arrays(
            np.float64,
            st.integers(min_value=1, max_value=20),
            elements=st.floats(min_value=0.1, max_value=1e3),
        ),
        slack=hnp.arrays(
            np.float64,
            st.integers(min_value=1, max_value=20),
            elements=st.floats(min_value=0.0, max_value=10.0),
        ),
    )
    @settings(max_examples=60)
    def test_ratio_at_least_one_when_reported_dominates(self, true, slack):
        n = min(true.shape[0], slack.shape[0])
        true = np.sort(true[:n])
        reported = np.sort(true + slack[:n])
        assert overall_ratio(reported, true) >= 1.0 - 1e-12

    @given(
        true=hnp.arrays(
            np.float64,
            st.integers(min_value=1, max_value=20),
            elements=st.floats(min_value=0.1, max_value=1e3),
        )
    )
    def test_identity_ratio(self, true):
        true = np.sort(true)
        assert overall_ratio(true, true) == pytest.approx(1.0)
