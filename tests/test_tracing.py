"""Tests for the distributed-tracing and incident plane (DESIGN §13).

Covers the W3C-style TraceContext (ids, traceparent round-trips, wire
dicts), the tracer's trace-aware span ids, the bounded TraceStore and
tree reconstruction, the flight recorder's debounce/bundle lifecycle,
the SLO burn-rate engine's episode semantics, the paging probes, the
request/result API fields, and the end-to-end cross-process trace a
sharded service produces for one sampled query.
"""

from __future__ import annotations

import json
import mmap
import sys
import urllib.request

import numpy as np
import pytest

from repro.api import SearchRequest, SearchResult
from repro.errors import InvalidParameterError
from repro.obs import (
    DEFAULT_WINDOWS,
    BurnWindow,
    FlightRecorder,
    MetricsRegistry,
    ObsExporter,
    PagingMetrics,
    SLOEngine,
    SLOSpec,
    SpanSchemaError,
    SpanTracer,
    Telemetry,
    TraceContext,
    TraceStore,
    build_trace_tree,
    counter_ratio_sli,
    error_rate_sli,
    latency_sli,
    read_fault_counts,
    residency_ratio,
    validate_span_dict,
)
from repro.obs.trace_context import active_context, new_request_id
from repro.serve import ShardedSearchService


class TestTraceContext:
    def test_new_mints_valid_ids(self):
        ctx = TraceContext.new()
        assert len(ctx.trace_id) == 32
        assert len(ctx.span_id) == 16
        assert ctx.sampled
        int(ctx.trace_id, 16)
        int(ctx.span_id, 16)

    def test_rejects_malformed_ids(self):
        with pytest.raises(InvalidParameterError, match="trace_id"):
            TraceContext(trace_id="xyz", span_id="a" * 16)
        with pytest.raises(InvalidParameterError, match="span_id"):
            TraceContext(trace_id="a" * 32, span_id="nope")
        with pytest.raises(InvalidParameterError, match="trace_id"):
            TraceContext(trace_id="0" * 32, span_id="a" * 16)

    def test_traceparent_round_trip(self):
        ctx = TraceContext.new()
        header = ctx.to_traceparent()
        assert header == f"00-{ctx.trace_id}-{ctx.span_id}-01"
        assert TraceContext.from_traceparent(header) == ctx

    def test_unsampled_flags(self):
        ctx = TraceContext.new(sampled=False)
        assert ctx.to_traceparent().endswith("-00")
        back = TraceContext.from_traceparent(ctx.to_traceparent())
        assert not back.sampled

    def test_from_traceparent_rejects_garbage(self):
        with pytest.raises(InvalidParameterError, match="malformed"):
            TraceContext.from_traceparent("not-a-header")
        good = TraceContext.new().to_traceparent()
        with pytest.raises(InvalidParameterError, match="version"):
            TraceContext.from_traceparent("ff" + good[2:])

    def test_dict_round_trip(self):
        ctx = TraceContext.new(sampled=False)
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_child_keeps_trace(self):
        ctx = TraceContext.new()
        child = ctx.child("b" * 16)
        assert child.trace_id == ctx.trace_id
        assert child.span_id == "b" * 16

    def test_active_context_gate(self):
        sampled = TraceContext.new()
        assert active_context(sampled) is sampled
        assert active_context(TraceContext.new(sampled=False)) is None
        assert active_context(None) is None

    def test_new_request_id(self):
        rid = new_request_id()
        assert len(rid) == 16
        int(rid, 16)


class TestTracerTraceIds:
    def test_legacy_spans_keep_sequential_int_ids(self):
        tracer = SpanTracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        ids = [s.span_id for s in tracer.spans]
        assert all(isinstance(i, int) for i in ids)
        assert all(s.trace_id is None for s in tracer.spans)

    def test_context_span_joins_trace(self):
        tracer = SpanTracer()
        ctx = TraceContext.new()
        with tracer.span("root", context=ctx):
            with tracer.span("child"):
                pass
        child, root = tracer.spans
        assert root.trace_id == ctx.trace_id
        assert root.parent_id == ctx.span_id
        assert isinstance(root.span_id, str)
        # Nested span inherits the trace through the stack.
        assert child.trace_id == ctx.trace_id
        assert child.parent_id == root.span_id

    def test_current_context_inside_trace(self):
        tracer = SpanTracer()
        ctx = TraceContext.new()
        assert tracer.current_context() is None
        with tracer.span("root", context=ctx):
            inner = tracer.current_context()
            assert inner is not None
            assert inner.trace_id == ctx.trace_id
            assert inner.span_id != ctx.span_id

    def test_pop_trace_removes_only_that_trace(self):
        tracer = SpanTracer()
        ctx = TraceContext.new()
        with tracer.span("plain"):
            pass
        with tracer.span("traced", context=ctx):
            pass
        popped = tracer.pop_trace(ctx.trace_id)
        assert [s.name for s in popped] == ["traced"]
        assert [s.name for s in tracer.spans] == ["plain"]


class TestTraceStore:
    def _span(self, trace_id, span_id, parent_id=None, start=0.0):
        return {
            "name": "s",
            "span_id": span_id,
            "parent_id": parent_id,
            "trace_id": trace_id,
            "start": start,
            "end": start + 1.0,
            "duration": 1.0,
            "attributes": {},
        }

    def test_add_merges_same_trace(self):
        store = TraceStore(capacity=4)
        tid = "a" * 32
        store.add(tid, [self._span(tid, "1" * 16)])
        store.add(tid, [self._span(tid, "2" * 16, "1" * 16, start=1.0)])
        assert len(store) == 1
        assert len(store.get(tid)) == 2

    def test_eviction_oldest_first(self):
        store = TraceStore(capacity=2)
        tids = [f"{i:032x}" for i in range(1, 4)]
        for tid in tids:
            store.add(tid, [self._span(tid, "1" * 16)])
        assert store.ids() == tids[1:]
        assert store.get(tids[0]) is None
        assert store.stats() == {
            "capacity": 2,
            "size": 2,
            "added": 3,
            "evicted": 1,
        }

    def test_rejects_bad_capacity(self):
        with pytest.raises(InvalidParameterError, match="capacity"):
            TraceStore(capacity=0)

    def test_tree_and_jsonl_round_trip(self, tmp_path):
        store = TraceStore()
        tid = "c" * 32
        store.add(
            tid,
            [
                self._span(tid, "1" * 16, parent_id="f" * 16),
                self._span(tid, "2" * 16, "1" * 16, start=1.0),
            ],
        )
        tree = store.tree(tid)
        assert tree["span_count"] == 2
        assert len(tree["roots"]) == 1
        assert tree["roots"][0]["children"][0]["span_id"] == "2" * 16
        path = store.export_jsonl(tmp_path / "traces.jsonl")
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == 2
        for record in lines:
            validate_span_dict(record)
        assert build_trace_tree(lines)["span_count"] == 2
        assert store.tree("d" * 32) is None


class TestTraceTreeAndSchema:
    def test_mixed_traces_rejected(self):
        spans = [
            {"span_id": "1" * 16, "parent_id": None, "trace_id": "a" * 32,
             "start": 0.0},
            {"span_id": "2" * 16, "parent_id": None, "trace_id": "b" * 32,
             "start": 0.0},
        ]
        with pytest.raises(SpanSchemaError, match="2 traces"):
            build_trace_tree(spans)

    def test_validate_span_dict_errors(self):
        good = {
            "name": "s",
            "span_id": "1" * 16,
            "parent_id": None,
            "trace_id": "a" * 32,
            "start": 0.0,
            "end": 1.0,
            "duration": 1.0,
            "attributes": {},
        }
        assert validate_span_dict(good) is good
        with pytest.raises(SpanSchemaError, match="missing"):
            validate_span_dict({k: v for k, v in good.items() if k != "name"})
        with pytest.raises(SpanSchemaError, match="type"):
            validate_span_dict({**good, "attributes": "oops"})
        with pytest.raises(SpanSchemaError, match="32-hex"):
            validate_span_dict({**good, "trace_id": "zz"})


class TestFlightRecorder:
    def _recorder(self, tmp_path=None, **kwargs):
        registry = MetricsRegistry()
        registry.counter("some_total", "x").inc(3)
        return FlightRecorder(
            registry=registry,
            dump_dir=tmp_path,
            **kwargs,
        )

    def test_bundle_contents_and_file(self, tmp_path):
        store = TraceStore()
        tid = "a" * 32
        store.add(tid, [{
            "name": "s", "span_id": "1" * 16, "parent_id": None,
            "trace_id": tid, "start": 0.0, "end": 1.0, "duration": 1.0,
            "attributes": {},
        }])
        registry = MetricsRegistry()
        recorder = FlightRecorder(
            registry=registry,
            trace_store=store,
            health=lambda: {"healthy": True},
            dump_dir=tmp_path,
        )
        bundle = recorder.trigger("manual", note="unit test")
        assert bundle["reason"] == "manual"
        assert bundle["detail"] == {"note": "unit test"}
        assert bundle["traces"][0]["trace_id"] == tid
        assert bundle["health"] == {"healthy": True}
        files = list(tmp_path.glob("flight_*_manual.json"))
        assert len(files) == 1
        assert json.loads(files[0].read_text())["seq"] == bundle["seq"]

    def test_debounce_is_per_reason(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        recorder = FlightRecorder(
            registry=registry, min_interval_seconds=30.0, clock=clock
        )
        assert recorder.trigger("manual") is not None
        assert recorder.trigger("manual") is None
        assert recorder.trigger("worker_respawn") is not None
        clock.advance(31.0)
        assert recorder.trigger("manual") is not None
        triggers = registry.get("lazylsh_flight_triggers_total")
        dumps = registry.get("lazylsh_flight_dumps_total")
        assert triggers.value(reason="manual") == 3
        assert dumps.value(reason="manual") == 2

    def test_ring_capacity(self):
        recorder = self._recorder(capacity=2, min_interval_seconds=0.0)
        for i in range(4):
            recorder.trigger("manual", i=i)
        assert len(recorder.bundles) == 2
        assert recorder.bundles[-1]["detail"] == {"i": 3}
        assert recorder.stats()["seq"] == 4

    def test_broken_health_does_not_raise(self):
        registry = MetricsRegistry()

        def bad_health():
            raise RuntimeError("nope")

        recorder = FlightRecorder(registry=registry, health=bad_health)
        bundle = recorder.trigger("manual")
        assert bundle["health"] == {"error": "RuntimeError"}

    def test_rejects_bad_params(self):
        registry = MetricsRegistry()
        with pytest.raises(InvalidParameterError, match="capacity"):
            FlightRecorder(registry=registry, capacity=0)
        with pytest.raises(InvalidParameterError, match="interval"):
            FlightRecorder(registry=registry, min_interval_seconds=-1)


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestSLOEngine:
    def _engine(self, good_total, clock):
        registry = MetricsRegistry()
        engine = SLOEngine(registry, clock=clock)
        engine.add(SLOSpec(
            "availability",
            objective=0.99,
            sli=lambda: good_total(),
            windows=(BurnWindow("fast", 300.0, 3600.0, 14.4),),
        ))
        return registry, engine

    def test_planted_violation_is_one_episode(self):
        clock = FakeClock()
        state = {"good": 0.0, "total": 0.0}
        registry, engine = self._engine(
            lambda: (state["good"], state["total"]), clock
        )
        # Healthy traffic: 1000 events, all good.
        state.update(good=1000.0, total=1000.0)
        report = engine.tick()
        assert report["healthy"]
        # Violation burst: 80% errors, sustained across several ticks --
        # still exactly ONE alert episode.
        alerts = registry.get("lazylsh_slo_alerts_total")
        for _ in range(5):
            clock.advance(60.0)
            state["total"] += 100.0
            state["good"] += 20.0
            report = engine.tick()
        assert report["alerting"] == ["availability"]
        assert alerts.value(slo="availability") == 1
        # Recovery: error rate in-window drops to zero.
        for _ in range(70):
            clock.advance(60.0)
            state["total"] += 100.0
            state["good"] += 100.0
            report = engine.tick()
        assert report["healthy"]
        assert engine.state()["alerting"] == []
        # A second sustained burst (long enough to make the 1-hour
        # window material again) opens a second episode.
        for _ in range(12):
            clock.advance(60.0)
            state["total"] += 100.0
            state["good"] += 10.0
            engine.tick()
        assert alerts.value(slo="availability") == 2

    def test_no_traffic_is_healthy(self):
        clock = FakeClock()
        _registry, engine = self._engine(lambda: (0.0, 0.0), clock)
        assert engine.tick()["healthy"]

    def test_on_alert_callback(self):
        clock = FakeClock()
        fired = []
        registry = MetricsRegistry()
        engine = SLOEngine(
            registry, clock=clock, on_alert=lambda name, d: fired.append(name)
        )
        state = {"good": 0.0, "total": 0.0}
        engine.add(SLOSpec(
            "x", objective=0.9,
            sli=lambda: (state["good"], state["total"]),
        ))
        engine.tick()  # baseline snapshot (no traffic yet)
        clock.advance(60.0)
        state.update(good=0.0, total=100.0)
        engine.tick()
        assert fired == ["x"]

    def test_spec_validation(self):
        with pytest.raises(InvalidParameterError, match="objective"):
            SLOSpec("bad", objective=1.5, sli=lambda: (0.0, 0.0))
        with pytest.raises(InvalidParameterError, match="window"):
            BurnWindow("w", short_seconds=10.0, long_seconds=5.0,
                       threshold=1.0)
        with pytest.raises(InvalidParameterError, match="threshold"):
            BurnWindow("w", 1.0, 2.0, threshold=0.0)
        assert len(DEFAULT_WINDOWS) == 2

    def test_latency_sli_threshold_must_be_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.01, 0.1, 1.0))
        with pytest.raises(InvalidParameterError, match="bucket"):
            latency_sli(hist, 0.05)
        sli = latency_sli(hist, 0.1)
        hist.observe(0.05)
        hist.observe(0.5)
        assert sli() == (1.0, 2.0)

    def test_counter_and_error_rate_slis(self):
        registry = MetricsRegistry()
        good = registry.counter("good_total")
        total = registry.counter("all_total")
        good.inc(8, shard="0")
        good.inc(1, shard="1")
        total.inc(10)
        assert counter_ratio_sli(good, total)() == (9.0, 10.0)
        errors = registry.counter("err_total")
        errors.inc(3)
        assert error_rate_sli(errors, total)() == (7.0, 10.0)


class TestPagingMetrics:
    def test_read_fault_counts_on_linux(self):
        counts = read_fault_counts()
        if sys.platform.startswith("linux"):
            assert counts is not None
            minor, major = counts
            assert minor >= 0 and major >= 0
        else:  # pragma: no cover - platform-dependent
            assert counts is None

    def test_update_publishes_monotone_counters(self):
        registry = MetricsRegistry()
        paging = PagingMetrics(registry)
        report = paging.update()
        if not paging.supported:  # pragma: no cover
            pytest.skip("no /proc/self/stat")
        assert report["minor_faults"] >= 0
        # Touch some memory, counters never go down.
        _junk = bytearray(4 * 1024 * 1024)
        paging.update()
        minor = registry.get("lazylsh_minor_faults_total")
        assert minor.value() >= 0

    def test_residency_of_warm_mapping(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"x" * (256 * 1024))
        mapped = np.memmap(path, dtype=np.uint8, mode="r")
        mapped.sum()  # fault everything in
        ratio = residency_ratio(mapped)
        if ratio is None:  # pragma: no cover - no mincore
            pytest.skip("mincore unavailable")
        assert 0.0 < ratio <= 1.0
        registry = MetricsRegistry()
        paging = PagingMetrics(registry)
        report = paging.update(stores={"blob": mapped})
        assert report["residency"]["blob"] == pytest.approx(ratio, abs=0.5)

    def test_residency_handles_plain_bytes(self):
        assert residency_ratio(b"") is None


class TestRequestResultFields:
    def test_trace_context_coercions(self):
        ctx = TraceContext.new()
        q = np.zeros(4)
        assert SearchRequest(q, k=1, trace_context=ctx).trace_context is ctx
        from_header = SearchRequest(
            q, k=1, trace_context=ctx.to_traceparent()
        )
        assert from_header.trace_context == ctx
        from_dict = SearchRequest(q, k=1, trace_context=ctx.to_dict())
        assert from_dict.trace_context == ctx
        with pytest.raises(InvalidParameterError, match="trace_context"):
            SearchRequest(q, k=1, trace_context=123)

    def test_request_id_and_deadline_validation(self):
        q = np.zeros(4)
        assert SearchRequest(q, k=1, request_id="abc").request_id == "abc"
        with pytest.raises(InvalidParameterError, match="request_id"):
            SearchRequest(q, k=1, request_id="")
        with pytest.raises(InvalidParameterError, match="deadline_ms"):
            SearchRequest(q, k=1, deadline_ms=0)
        assert SearchRequest(q, k=1, deadline_ms=5.0).deadline_ms == 5.0

    def test_result_dict_only_carries_set_fields(self):
        base = SearchResult(
            ids=np.array([1]),
            distances=np.array([0.5]),
            p=1.0,
            k=1,
        )
        assert "request_id" not in base.to_dict()
        assert "trace_id" not in base.to_dict()
        tagged = SearchResult(
            ids=np.array([1]),
            distances=np.array([0.5]),
            p=1.0,
            k=1,
            request_id="r1",
            trace_id="a" * 32,
            deadline_exceeded=True,
        )
        exported = tagged.to_dict()
        assert exported["request_id"] == "r1"
        assert exported["trace_id"] == "a" * 32
        assert exported["deadline_exceeded"] is True


class TestEndToEndServiceTrace:
    """One sampled query through a 2-shard service = one trace tree."""

    def test_cross_process_trace_tree(self, built_index, small_split):
        store = TraceStore()
        telemetry = Telemetry(
            capture_traces=False, trace_store=store, trace_sample=0.0
        )
        ctx = TraceContext.new()
        with ShardedSearchService(
            built_index, n_shards=2, telemetry=telemetry
        ) as service:
            results = service.search_batch(
                small_split.queries[:1], 5, p=1.0, trace_context=ctx
            )
            untraced = service.search_batch(small_split.queries[:1], 5, p=1.0)
        result = results[0]
        assert result.trace_id == ctx.trace_id
        assert result.request_id is not None
        # Bit-identity: tracing must not perturb the search.
        assert np.array_equal(result.ids, untraced[0].ids)
        spans = store.get(ctx.trace_id)
        assert spans is not None
        for record in spans:
            validate_span_dict(record)
        tree = build_trace_tree(spans)
        assert tree["trace_id"] == ctx.trace_id
        assert len(tree["roots"]) == 1
        root = tree["roots"][0]
        assert root["name"] == "serve.search_batch"
        child_names = {c["name"] for c in root["children"]}
        assert "worker.round" in child_names
        assert "serve.merge" in child_names
        shards = {
            c["attributes"].get("shard")
            for c in root["children"]
            if c["name"] == "worker.round"
        }
        assert shards == {0, 1}
        # Exporter serves the same tree over /trace/<id>.
        exporter = ObsExporter(telemetry.registry, trace_store=store).start()
        try:
            with urllib.request.urlopen(
                f"{exporter.url}/trace/{ctx.trace_id}", timeout=5
            ) as fh:
                served = json.loads(fh.read().decode())
            assert served["span_count"] == tree["span_count"]
            with urllib.request.urlopen(
                f"{exporter.url}/trace", timeout=5
            ) as fh:
                listing = json.loads(fh.read().decode())
            assert ctx.trace_id in listing["traces"]
        finally:
            exporter.stop()

    def test_deadline_overrun_flags_and_counts(self, built_index, small_split):
        registry_telemetry = Telemetry(capture_traces=False)
        recorder = FlightRecorder(
            registry=registry_telemetry.registry, min_interval_seconds=0.0
        )
        registry_telemetry.flight_recorder = recorder
        with ShardedSearchService(
            built_index, n_shards=2, telemetry=registry_telemetry
        ) as service:
            results = service.search_batch(
                small_split.queries[:1], 5, p=1.0, deadline_ms=1e-6
            )
        assert results[0].deadline_exceeded
        overruns = registry_telemetry.registry.get(
            "lazylsh_deadline_overruns_total"
        )
        assert overruns.value(where="serve.search_batch") == 1
        assert recorder.bundles[-1]["reason"] == "deadline_overrun"

    def test_unsampled_context_leaves_no_trace(self, built_index, small_split):
        store = TraceStore()
        telemetry = Telemetry(
            capture_traces=False, trace_store=store, trace_sample=0.0
        )
        ctx = TraceContext.new(sampled=False)
        with ShardedSearchService(
            built_index, n_shards=2, telemetry=telemetry
        ) as service:
            results = service.search_batch(
                small_split.queries[:1], 5, p=1.0, trace_context=ctx
            )
        assert results[0].trace_id is None
        assert len(store) == 0
