"""Unit tests for repro.metrics.collision: Eq. 3-5 and Lemma 2."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.metrics.collision import (
    collision_probability,
    collision_probability_cauchy,
    collision_probability_gaussian,
    collision_probability_numeric,
    collision_probability_vector,
)
from repro.metrics.stable import sample_cauchy, sample_gaussian


class TestClosedForms:
    def test_cauchy_known_value(self):
        # p(1, 1) = 2*atan(1)/pi - ln(2)/pi = 0.5 - 0.2206...
        assert collision_probability_cauchy(1.0, 1.0) == pytest.approx(
            0.5 - np.log(2.0) / np.pi
        )

    def test_zero_distance_collides_surely(self):
        assert collision_probability_cauchy(0.0, 1.0) == 1.0
        assert collision_probability_gaussian(0.0, 1.0) == 1.0

    def test_probabilities_in_unit_interval(self):
        for s in (0.01, 0.5, 1.0, 5.0, 100.0):
            for r0 in (0.5, 1.0, 4.0):
                assert 0.0 <= collision_probability_cauchy(s, r0) <= 1.0
                assert 0.0 <= collision_probability_gaussian(s, r0) <= 1.0

    @pytest.mark.parametrize(
        "func",
        [collision_probability_cauchy, collision_probability_gaussian],
    )
    def test_monotone_decreasing_in_distance(self, func):
        values = [func(s, 1.0) for s in np.linspace(0.01, 10.0, 40)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    @pytest.mark.parametrize(
        "func",
        [collision_probability_cauchy, collision_probability_gaussian],
    )
    def test_monotone_increasing_in_width(self, func):
        values = [func(1.0, r0) for r0 in np.linspace(0.1, 20.0, 40)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_wide_bucket_limit(self):
        assert collision_probability_cauchy(1.0, 1e6) == pytest.approx(1.0, abs=1e-4)
        assert collision_probability_gaussian(1.0, 1e6) == pytest.approx(1.0, abs=1e-4)

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            collision_probability_cauchy(-1.0, 1.0)
        with pytest.raises(InvalidParameterError):
            collision_probability_gaussian(1.0, 0.0)


class TestLemma2ScaleInvariance:
    """Lemma 2: p(s, r) == p(c*s, c*r) for any c > 0."""

    @pytest.mark.parametrize("p", [1.0, 2.0])
    @pytest.mark.parametrize("c", [0.5, 2.0, 7.3])
    def test_scale_invariance_closed_forms(self, p, c):
        base = collision_probability(1.3, 0.8, p)
        scaled = collision_probability(1.3 * c, 0.8 * c, p)
        assert scaled == pytest.approx(base, rel=1e-9)

    def test_scale_invariance_numeric(self):
        base = collision_probability_numeric(1.0, 2.0, 0.5)
        scaled = collision_probability_numeric(3.0, 6.0, 0.5)
        assert scaled == pytest.approx(base, rel=1e-6)


class TestNumericIntegral:
    def test_matches_cauchy_closed_form(self):
        for s, r0 in [(1.0, 1.0), (2.0, 1.0), (1.0, 4.0)]:
            numeric = collision_probability_numeric(s, r0, 1.0)
            closed = collision_probability_cauchy(s, r0)
            assert numeric == pytest.approx(closed, abs=5e-3)

    def test_matches_gaussian_closed_form(self):
        for s, r0 in [(1.0, 1.0), (1.0, 4.0)]:
            numeric = collision_probability_numeric(s, r0, 2.0)
            closed = collision_probability_gaussian(s, r0)
            assert numeric == pytest.approx(closed, abs=5e-3)

    def test_fractional_p_monotone_in_distance(self):
        probs = [
            collision_probability_numeric(s, 1.0, 0.5)
            for s in (0.2, 0.5, 1.0, 2.0, 5.0)
        ]
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_dispatch(self):
        assert collision_probability(1.0, 1.0, 1.0) == collision_probability_cauchy(
            1.0, 1.0
        )
        assert collision_probability(1.0, 1.0, 2.0) == collision_probability_gaussian(
            1.0, 1.0
        )


class TestEmpiricalCollision:
    """The closed forms should predict actual hash collision rates."""

    def test_cauchy_collision_rate(self):
        rng = np.random.default_rng(17)
        n, r0, s = 120_000, 4.0, 1.5
        # Two 1-d points at l1 distance s, projected by Cauchy 'a':
        # difference of projections is s * Cauchy.
        a = sample_cauchy(n, seed=rng)
        b = rng.uniform(0.0, r0, n)
        h1 = np.floor(b / r0)
        h2 = np.floor((s * a + b) / r0)
        empirical = (h1 == h2).mean()
        predicted = collision_probability_cauchy(s, r0)
        assert empirical == pytest.approx(predicted, abs=0.01)

    def test_gaussian_collision_rate(self):
        rng = np.random.default_rng(23)
        n, r0, s = 120_000, 4.0, 2.0
        a = sample_gaussian(n, seed=rng)
        b = rng.uniform(0.0, r0, n)
        h1 = np.floor(b / r0)
        h2 = np.floor((s * a + b) / r0)
        empirical = (h1 == h2).mean()
        predicted = collision_probability_gaussian(s, r0)
        assert empirical == pytest.approx(predicted, abs=0.01)


class TestVectorised:
    def test_shape_preserved(self):
        s = np.array([[0.5, 1.0], [2.0, 4.0]])
        out = collision_probability_vector(s, 1.0, 1.0)
        assert out.shape == s.shape

    def test_values_match_scalar(self):
        s = np.array([0.5, 1.0, 2.0])
        out = collision_probability_vector(s, 1.0, 1.0)
        for i, si in enumerate(s):
            assert out[i] == pytest.approx(collision_probability(float(si), 1.0, 1.0))
