"""Content-based image retrieval with fractional distance metrics.

Simulates the paper's image-retrieval scenario (Inria SIFT features): a
feature database is indexed once, and retrieval quality under l0.5 —
reported by Howarth & Ruger (ECIR 2005) to beat l1/l2 for CBIR — is
compared against l1, using exact search as the reference and C2LSH as the
baseline engine.

Run:  python examples/image_retrieval.py
"""

import numpy as np

from repro import LazyLSH, LazyLSHConfig
from repro.baselines import C2LSH
from repro.baselines.c2lsh import C2LSHConfig
from repro.datasets import exact_knn, inria_like, sample_queries
from repro.eval import overall_ratio, recall_at_k
from repro.eval.harness import ResultTable

N_POINTS = 6000
N_QUERIES = 8
K = 20


def main() -> None:
    print(f"generating Inria-like SIFT features ({N_POINTS} x 128)...")
    features = inria_like(n=N_POINTS, seed=11)
    split = sample_queries(features, n_queries=N_QUERIES, seed=3)

    print("building LazyLSH and C2LSH indexes...")
    lazy = LazyLSH(
        LazyLSHConfig(c=3.0, p_min=0.5, seed=5, mc_samples=30_000)
    ).build(split.data)
    c2 = C2LSH(C2LSHConfig(c=3.0, seed=5)).build(split.data)
    print(f"  LazyLSH: eta={lazy.eta}, {lazy.index_size_mb():.0f} MB")
    print(f"  C2LSH:   eta={c2.eta}, {c2.index_size_mb():.0f} MB\n")

    table = ResultTable(
        f"Top-{K} retrieval quality on Inria-like features",
        ["metric", "engine", "overall ratio", "recall@k", "avg I/O"],
    )
    for p in (0.5, 1.0):
        true_ids, true_dists = exact_knn(split.data, split.queries, K, p)
        for engine_name, engine in (("LazyLSH", lazy), ("C2LSH", c2)):
            ratios, recalls, ios = [], [], []
            for qi, query in enumerate(split.queries):
                result = engine.knn(query, K, p=p)
                ratios.append(overall_ratio(result.distances, true_dists[qi]))
                recalls.append(recall_at_k(result.ids, true_ids[qi]))
                ios.append(result.io.total)
            table.add_row(
                [
                    f"l{p:g}",
                    engine_name,
                    float(np.mean(ratios)),
                    float(np.mean(recalls)),
                    float(np.mean(ios)),
                ]
            )
    print(table.render())
    print(
        "\nLazyLSH answers the fractional-metric queries natively; C2LSH"
        "\nre-ranks l1 candidates and pays for it in accuracy (Figure 11)."
    )


if __name__ == "__main__":
    main()
