"""Multi-query optimisation: explore six metrics for the price of one.

Reproduces the Section 4.3 / Figure 12 workflow on a simulated SUN-like
GIST dataset: issuing the same query point under l0.5 ... l1.0 as a batch
shares almost all sequential I/O with the single l0.5 query.

Run:  python examples/multiquery_batch.py
"""

from repro import LazyLSH, LazyLSHConfig, MultiQueryEngine
from repro.datasets import sample_queries, sun_like
from repro.eval.harness import ResultTable, Timer

P_VALUES = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
K = 10


def main() -> None:
    print("generating SUN-like GIST features (4000 x 512)...")
    features = sun_like(n=4000, seed=9)
    split = sample_queries(features, n_queries=5, seed=4)

    index = LazyLSH(
        LazyLSHConfig(c=3.0, p_min=0.5, seed=9, mc_samples=30_000)
    ).build(split.data)
    engine = MultiQueryEngine(index)
    print(f"index built: eta={index.eta}\n")

    table = ResultTable(
        "I/O per query point: six separate queries vs one batch",
        ["query", "6 separate", "batched", "batch / single-l0.5"],
    )
    for qi, query in enumerate(split.queries):
        separate = sum(
            index.knn(query, K, p=p).io.total for p in P_VALUES
        )
        with Timer() as timer:
            batch = engine.knn(query, K, metrics=P_VALUES)
        single = index.knn(query, K, p=0.5)
        table.add_row(
            [
                qi,
                separate,
                batch.io.total,
                round(batch.io.total / max(single.io.total, 1), 3),
            ]
        )
    print(table.render())
    print(
        "\nBatch cost stays within a few percent of the single l0.5 query"
        "\n(the paper's Figure 12), because the wider l0.5 windows cover"
        "\nthe pages every other metric needs."
    )


if __name__ == "__main__":
    main()
