"""Approximate kNN graphs for clustering under different lp metrics.

Section 6.1 motivates LazyLSH with similarity-search applications such as
clustering: a kNN graph built under the *right* metric separates clusters
that the wrong metric merges.  This example builds one LazyLSH index over
a mixture dataset and compares the connected-component structure of
mutual-kNN graphs under l0.5 and l1 — from the same index.

Run:  python examples/knn_graph_clustering.py
"""

import networkx as nx
import numpy as np

from repro import LazyLSH, LazyLSHConfig
from repro.apps import build_knn_graph
from repro.datasets import make_labeled_dataset
from repro.eval.harness import ResultTable


def cluster_purity(graph: nx.DiGraph, labels: np.ndarray) -> float:
    """Average majority-label share over connected components (size > 1)."""
    undirected = graph.to_undirected()
    purities = []
    for component in nx.connected_components(undirected):
        members = [u for u in component]
        if len(members) < 2:
            continue
        values, counts = np.unique(labels[members], return_counts=True)
        purities.append(counts.max() / float(len(members)))
    return float(np.mean(purities)) if purities else 0.0


def main() -> None:
    dataset = make_labeled_dataset("segmentation", seed=7)
    points, labels = dataset.points[:600], dataset.labels[:600]
    print(f"dataset: {points.shape[0]} points, {dataset.n_classes} classes")

    config = LazyLSHConfig(c=3.0, p_min=0.5, seed=7, mc_samples=30_000)
    index = LazyLSH(config).build(points)
    print(f"index built once: eta={index.eta}\n")

    table = ResultTable(
        "Mutual 5-NN graph structure per metric (same index)",
        ["metric", "edges", "components", "purity"],
    )
    for p in (0.5, 0.7, 1.0):
        graph = build_knn_graph(index, k=5, p=p, mutual_only=True)
        undirected = graph.to_undirected()
        table.add_row(
            [
                f"l{p:g}",
                undirected.number_of_edges(),
                nx.number_connected_components(undirected),
                round(cluster_purity(graph, labels), 3),
            ]
        )
    print(table.render())
    print(
        "\nOne index, three metrics, three different graph structures —"
        "\nthe exploration loop the paper's introduction argues for."
    )


if __name__ == "__main__":
    main()
