"""Metric selection: find the best lp metric for a classification dataset.

This is the paper's motivating workflow (Table 1): the optimal fractional
metric is dataset-dependent and unknowable a priori, so explore the data
with approximate 1NN classifiers under many metrics — from ONE index —
and keep the metric with the highest accuracy.

Run:  python examples/metric_selection.py [dataset ...]
"""

import sys

from repro import LazyLSH, LazyLSHConfig
from repro.datasets import LABELED_DATASET_NAMES, make_labeled_dataset
from repro.eval import classification_accuracy
from repro.eval.harness import ResultTable

P_VALUES = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
N_TEST = 60


def evaluate_dataset(name: str) -> list:
    dataset = make_labeled_dataset(name, seed=7)
    x_train, y_train, x_test, y_test = dataset.split(N_TEST, seed=1)

    # Exact 1NN in l1 — Table 1's "Real 1NN" reference column.
    exact_acc = classification_accuracy(
        x_train, y_train, x_test, y_test, k=1, p=1.0
    )

    # One LazyLSH index serves all six metrics.
    config = LazyLSHConfig(c=3.0, p_min=0.5, seed=7, mc_samples=30_000)
    index = LazyLSH(config).build(x_train)

    row = [name, f"{100 * exact_acc:.1f}"]
    best_p, best_acc = None, -1.0
    for p in P_VALUES:
        acc = classification_accuracy(
            x_train, y_train, x_test, y_test, k=1, p=p, retriever=index
        )
        row.append(f"{100 * acc:.1f}")
        if acc > best_acc:
            best_p, best_acc = p, acc
    row.append(f"l{best_p:g}")
    return row


def main() -> None:
    names = sys.argv[1:] or ["ionosphere", "bcw", "svs"]
    unknown = [n for n in names if n not in LABELED_DATASET_NAMES]
    if unknown:
        raise SystemExit(
            f"unknown dataset(s) {unknown}; choose from {LABELED_DATASET_NAMES}"
        )
    table = ResultTable(
        "1NN classification accuracy (%) per metric — one index per dataset",
        ["dataset", "exact l1"] + [f"l{p:g}" for p in P_VALUES] + ["best"],
    )
    for name in names:
        table.add_row(evaluate_dataset(name))
        print(f"  finished {name}")
    print()
    print(table.render())
    print(
        "\nThe best metric differs per dataset — exactly the paper's"
        " motivation for serving many lp spaces from a single index."
    )


if __name__ == "__main__":
    main()
