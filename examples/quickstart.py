"""Quickstart: build one LazyLSH index, query it under several lp metrics.

Run:  python examples/quickstart.py
"""

from repro import LazyLSH, LazyLSHConfig, MultiQueryEngine
from repro.datasets import exact_knn, make_synthetic, sample_queries
from repro.eval import overall_ratio


def main() -> None:
    # A small synthetic dataset: 3000 points, 64 dimensions, integer
    # coordinates in [0, 1000] (the paper's Table 3 workload, scaled).
    points = make_synthetic(3000, 64, value_range=(0, 1000), seed=42)
    split = sample_queries(points, n_queries=3, seed=1)

    # One index, built once, in the l1 base space.  p_min=0.5 materialises
    # enough hash functions to serve every metric in [0.5, ~1.1].
    config = LazyLSHConfig(c=3.0, p_min=0.5, seed=42, mc_samples=50_000)
    index = LazyLSH(config).build(split.data)
    print(f"built index: {index.eta} hash functions, "
          f"{index.index_size_mb():.1f} MB (simulated)")
    print(f"supported metrics: {index.supported_metrics()}\n")

    # Query the SAME index under three different metrics.
    query = split.queries[0]
    for p in (0.5, 0.8, 1.0):
        result = index.knn(query, k=10, p=p)
        _true_ids, true_dists = exact_knn(split.data, query, 10, p)
        ratio = overall_ratio(result.distances, true_dists[0])
        print(
            f"l{p:<4g} kNN: nearest dist={result.distances[0]:.1f}  "
            f"overall ratio={ratio:.4f}  "
            f"I/O={result.io.sequential} seq + {result.io.random} rnd"
        )

    # Batched multi-metric querying shares I/O (Section 4.3).
    engine = MultiQueryEngine(index)
    batch = engine.knn(query, k=10, metrics=[0.5, 0.6, 0.7, 0.8, 0.9, 1.0])
    single = index.knn(query, k=10, p=0.5)
    print(
        f"\nmulti-query (6 metrics): {batch.io.total} I/Os vs "
        f"{single.io.total} for the single l0.5 query"
    )


if __name__ == "__main__":
    main()
