"""Figure 9: average I/O per query across lp spaces, LazyLSH vs C2LSH.

k = 100 over the four (simulated) real datasets.  The paper reports
LazyLSH's I/O falling as p grows from 0.5 to 1 (smaller collision
thresholds, fewer hash functions consulted) and landing at C2LSH's level
in the l1 space, where the two methods coincide in capability.
"""

import numpy as np

from bench_common import (
    P_SWEEP,
    c2lsh_index,
    dataset_split,
    lazy_index,
    print_tables,
)
from repro.eval.harness import ResultTable

DATASETS = ("inria", "sun", "labelme", "mnist")
K = 100


def _avg_io(engine, name: str, p: float) -> float:
    split = dataset_split(name)
    return float(
        np.mean([engine.knn(q, K, p=p).io.total for q in split.queries])
    )


def run() -> list[ResultTable]:
    tables = []
    for name in DATASETS:
        lazy = lazy_index(name)
        c2 = c2lsh_index(name)
        table = ResultTable(
            f"Figure 9 ({name}): avg I/O vs lp space, k={K}",
            ["p", "LazyLSH", "C2LSH"],
        )
        for p in P_SWEEP:
            table.add_row(
                [p, round(_avg_io(lazy, name, p)), round(_avg_io(c2, name, p))]
            )
        tables.append(table)
    return tables


def test_fig9_io_vs_p(benchmark, capsys):
    tables = benchmark.pedantic(run, rounds=1, iterations=1)
    print_tables(capsys, tables)
    for table in tables:
        lazy_ios = [row[1] for row in table.rows]
        c2_ios = [row[2] for row in table.rows]
        # LazyLSH: l0.5 costs more than l1 (higher threshold, more
        # functions) — the figure's dominant trend.
        assert lazy_ios[0] > lazy_ios[-1]
        # C2LSH runs the same l1 machinery regardless of the target p.
        assert max(c2_ios) - min(c2_ios) <= 0.2 * max(c2_ios)
        # At p = 1 the two methods' costs are at the same level
        # (within 3x; the paper shows near-identical bars).
        assert lazy_ios[-1] < 3 * c2_ios[-1]


if __name__ == "__main__":
    for table in run():
        print(table.render())
        print()
