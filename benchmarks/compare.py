"""Diff two sets of ``BENCH_*.json`` artifacts and flag regressions.

The perf benches (``bench_serve``, ``bench_mmap``, ``bench_wal``,
``bench_batch_knn``, ``bench_frontend``) emit machine-readable JSON into
``benchmarks/results/``.  This tool compares a baseline set against a
candidate set -- typically an old checkout's results directory against a
new one -- and reports time / IO / RSS deltas per metric path:

    python benchmarks/compare.py baseline_results/ new_results/ \
        --threshold 0.25

A metric *regresses* when it moves in the bad direction by more than the
threshold fraction: lower-is-better metrics (``*_seconds``, ``io``,
``rss``, fault counts, byte counts) by growing, higher-is-better metrics
(``queries_per_second``, ``speedup``, ``recall``) by shrinking.  Metrics
with no known direction (workload descriptors, ids, booleans) are
compared for drift but never fail the run.  Exit status is 1 when any
regression is found, 2 on usage errors, 0 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path

#: Path components implying "lower is better".
_LOWER_TOKENS = (
    "seconds",
    "wall",
    "latency",
    "_kb",
    "rss",
    "bytes",
    "faults",
    "io",
    "sequential",
    "random",
    "total",
    "restarts",
    "replays",
    "overhead",
    "lag",
)

#: Path components implying "higher is better".
_HIGHER_TOKENS = (
    "queries_per_second",
    "per_second",
    "speedup",
    "efficiency",
    "recall",
    "hit",
    "coalesce",
)

#: Path components that are workload / configuration descriptors, never
#: performance signals, even when their names contain a token above
#: (e.g. ``workload.n_queries``).  ``overhead``/``placebo`` cover the
#: telemetry-overhead calibration block: those are noise-floor readings
#: gated by obs_smoke's own placebo-aware logic, and diffing near-zero
#: fractions across machines would flap on every run.
_NEUTRAL_TOKENS = (
    "workload",
    "host",
    "python",
    "seed",
    "sizes",
    "ids",
    "distances",
    "eta",
    "shard_points",
    "cpu_count",
    "overhead",
    "placebo",
)


def classify(path: str) -> str | None:
    """Direction of metric ``path``: ``"lower"``, ``"higher"`` or None."""
    lowered = path.lower()
    for token in _NEUTRAL_TOKENS:
        if token in lowered:
            return None
    for token in _HIGHER_TOKENS:
        if token in lowered:
            return "higher"
    for token in _LOWER_TOKENS:
        if token in lowered:
            return "lower"
    return None


def flatten(obj: object, prefix: str = "") -> dict[str, float]:
    """All numeric leaves of a JSON tree as ``{dotted.path: value}``.

    Booleans are excluded (they are identity flags, not metrics); list
    elements are addressed by index so shard-wise series line up when
    both runs used the same shard counts.
    """
    out: dict[str, float] = {}
    if isinstance(obj, bool):
        return out
    if isinstance(obj, (int, float)):
        out[prefix or "value"] = float(obj)
        return out
    if isinstance(obj, dict):
        for key, value in obj.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten(value, path))
        return out
    if isinstance(obj, list):
        for i, value in enumerate(obj):
            path = f"{prefix}[{i}]"
            out.update(flatten(value, path))
        return out
    return out


@dataclass
class Delta:
    """One compared metric between baseline and candidate."""

    file: str
    path: str
    baseline: float
    candidate: float
    direction: str | None
    regressed: bool

    @property
    def pct(self) -> float | None:
        if self.baseline == 0:
            return None
        return (self.candidate - self.baseline) / abs(self.baseline)


def compare_docs(
    name: str,
    baseline: object,
    candidate: object,
    threshold: float,
) -> list[Delta]:
    """Deltas for every metric path present in both documents."""
    base_flat = flatten(baseline)
    cand_flat = flatten(candidate)
    deltas = []
    for path in sorted(base_flat.keys() & cand_flat.keys()):
        old, new = base_flat[path], cand_flat[path]
        direction = classify(path)
        regressed = False
        if direction is not None and old > 0:
            change = (new - old) / old
            if direction == "lower":
                regressed = change > threshold
            else:
                regressed = change < -threshold
        deltas.append(Delta(name, path, old, new, direction, regressed))
    return deltas


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.6g}"


def render(deltas: list[Delta], *, show_all: bool) -> str:
    """A plain-text delta table; regressions are always shown."""
    lines = []
    shown = [
        d
        for d in deltas
        if d.regressed or (show_all and d.direction is not None)
    ]
    if not shown:
        return "no regressions (and nothing to show)"
    width = max(len(f"{d.file}:{d.path}") for d in shown)
    for d in shown:
        pct = d.pct
        pct_text = "   n/a" if pct is None else f"{pct:+7.1%}"
        flag = "  REGRESSION" if d.regressed else ""
        lines.append(
            f"{d.file + ':' + d.path:<{width}}  "
            f"{_fmt(d.baseline):>14} -> {_fmt(d.candidate):>14}  "
            f"{pct_text}{flag}"
        )
    return "\n".join(lines)


def _collect(root: Path) -> dict[str, Path]:
    """``BENCH_*.json`` files under ``root`` (or ``root`` itself)."""
    if root.is_file():
        return {root.name: root}
    return {path.name: path for path in sorted(root.glob("BENCH_*.json"))}


def compare_paths(
    baseline_root: Path,
    candidate_root: Path,
    *,
    threshold: float,
    only: list[str] | None = None,
) -> tuple[list[Delta], list[str]]:
    """Compare all artifact files two roots have in common.

    Returns the deltas plus the list of artifact names that were present
    in the baseline but missing from the candidate (reported, not fatal:
    a quick run legitimately produces fewer artifacts).
    """
    base_files = _collect(baseline_root)
    cand_files = _collect(candidate_root)
    if only:
        base_files = {
            name: path
            for name, path in base_files.items()
            if any(token in name for token in only)
        }
    deltas: list[Delta] = []
    missing = []
    for name, base_path in base_files.items():
        cand_path = cand_files.get(name)
        if cand_path is None:
            missing.append(name)
            continue
        base_doc = json.loads(base_path.read_text())
        cand_doc = json.loads(cand_path.read_text())
        deltas.extend(compare_docs(name, base_doc, cand_doc, threshold))
    return deltas, missing


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path, help="baseline results dir or file")
    parser.add_argument("candidate", type=Path, help="candidate results dir or file")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="regression threshold as a fraction (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help="substring filters on artifact file names",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="show every directional metric, not just regressions",
    )
    args = parser.parse_args(argv)
    if args.threshold <= 0:
        print("--threshold must be positive", file=sys.stderr)
        return 2
    for root in (args.baseline, args.candidate):
        if not root.exists():
            print(f"no such path: {root}", file=sys.stderr)
            return 2
    deltas, missing = compare_paths(
        args.baseline,
        args.candidate,
        threshold=args.threshold,
        only=args.only,
    )
    if not deltas and not missing:
        print("no common BENCH_*.json artifacts to compare", file=sys.stderr)
        return 2
    print(render(deltas, show_all=args.all))
    for name in missing:
        print(f"note: {name} missing from candidate set")
    regressions = [d for d in deltas if d.regressed]
    compared_files = {d.file for d in deltas}
    print(
        f"\ncompared {len(deltas)} metrics across {len(compared_files)} "
        f"artifact(s); {len(regressions)} regression(s) at "
        f"threshold {args.threshold:.0%}"
    )
    return 1 if regressions else 0


if __name__ == "__main__":
    raise SystemExit(main())
