"""Micro-benchmarks of the core operations (multi-round timings).

Not a paper artifact — these track the implementation's own hot paths so
regressions in the hash bank, window reads or the query loop show up in
the pytest-benchmark comparison output.
"""

import numpy as np
import pytest

from repro import LazyLSH, LazyLSHConfig
from repro.core.hashing import StableHashBank
from repro.datasets import make_synthetic, sample_queries
from repro.storage.inverted_index import InvertedListStore
from repro.storage.io_stats import IOStats

N = 2000
D = 64


@pytest.fixture(scope="module")
def split():
    data = make_synthetic(N, D, value_range=(0, 1000), seed=5)
    return sample_queries(data, n_queries=2, seed=6)


@pytest.fixture(scope="module")
def index(split):
    cfg = LazyLSHConfig(c=3.0, p_min=0.5, seed=7, mc_samples=20_000, mc_buckets=100)
    built = LazyLSH(cfg).build(split.data)
    for p in (0.5, 1.0):
        built.metric_params(p)
    return built


def test_hash_bank_throughput(benchmark, split):
    bank = StableHashBank(D, 500, r0=1.0, c=3.0, t_max=1000.0, seed=1)
    benchmark(bank.hash_points, split.data)


def test_inverted_list_window_read(benchmark):
    rng = np.random.default_rng(2)
    store = InvertedListStore(rng.integers(0, 10_000, size=(200, N)).astype(np.int64))
    stats = IOStats()

    def read_all():
        for func in range(200):
            store.read_window(func, 4000, 6000, stats)

    benchmark(read_all)


def test_knn_l1_query(benchmark, index, split):
    benchmark(index.knn, split.queries[0], 10, 1.0)


def test_knn_fractional_query(benchmark, index, split):
    benchmark(index.knn, split.queries[0], 10, 0.5)


def test_build_small_index(benchmark, split):
    cfg = LazyLSHConfig(c=3.0, p_min=1.0, seed=7, mc_samples=20_000, mc_buckets=100)

    def build():
        return LazyLSH(cfg).build(split.data)

    benchmark.pedantic(build, rounds=3, iterations=1)
