"""HTTP front door under open-loop load: QPS, tail latency, coalescing.

Drives the :class:`~repro.serve.Frontend` (DESIGN §14) the way a client
fleet would — fixed-rate *open-loop* arrivals over real HTTP, so queue
wait shows up in the latency numbers instead of being hidden by a
closed-loop client that only sends when the previous answer is back:

* **Identity check** — a burst of concurrent requests (duplicates,
  shared-query-point/different-``p`` groups, singletons) must return
  ids/distances bit-identical to issuing each request alone through
  ``ShardedSearchService.search``.  The run aborts on any divergence, so
  the throughput numbers below are for *correct* coalescing only.
* **Open-loop sweep** — requests arrive at a fixed offered rate for a
  fixed duration, drawn from a pool with a hot subset (repeats exercise
  the result cache).  Reported per offered rate: sustained
  ``queries_per_second``, arrival-to-response ``p50_seconds`` /
  ``p99_seconds``, the coalesce ratio (requests answered per index
  scan), the cache hit rate — overall and split by bucket heat (the
  workload analytics' hot-bucket view of each lookup) — and the 429
  shed count.

Run ``--smoke`` for the seconds-scale CI version (writes
``BENCH_frontend.smoke.json``); the full run writes
``BENCH_frontend.json``.  Both feed ``compare.py --baseline``.
"""

from __future__ import annotations

import argparse
import json
import platform
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro import LazyLSH, LazyLSHConfig, ShardedSearchService
from repro.serve import Frontend

SEED = 7

FULL = {
    "n": 8_000,
    "d": 16,
    "shards": 2,
    "k": 10,
    "metrics": (0.5, 0.8, 1.0),
    "coalesce_ms": 2.0,
    "max_pending": 256,
    "cache_capacity": 1024,
    "pool_size": 64,
    "hot_queries": 8,
    "hot_fraction": 0.4,
    "offered_qps": (50.0, 200.0, 400.0),
    "duration_seconds": 10.0,
    "identity_requests": 24,
}
SMOKE = {
    "n": 1_200,
    "d": 12,
    "shards": 2,
    "k": 5,
    "metrics": (0.5, 1.0),
    "coalesce_ms": 2.0,
    "max_pending": 256,
    "cache_capacity": 256,
    "pool_size": 16,
    "hot_queries": 4,
    "hot_fraction": 0.4,
    "offered_qps": (80.0,),
    "duration_seconds": 3.0,
    "identity_requests": 12,
}


def _post(url: str, body: dict, timeout: float = 30.0) -> tuple[int, dict]:
    data = json.dumps(body).encode()
    request = urllib.request.Request(
        url, data=data,
        headers={"Content-Type": "application/json"}, method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _get(url: str, timeout: float = 30.0) -> dict:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.loads(resp.read())


def _wire(query: np.ndarray, k: int, p: float) -> dict:
    return {"v": 1, "query": query.tolist(), "k": k, "p": float(p)}


def check_identity(
    frontend: Frontend,
    service: ShardedSearchService,
    queries: np.ndarray,
    workload: dict,
) -> dict:
    """Concurrent mixed burst == one-by-one ``service.search``, bitwise.

    The burst interleaves (a) one query point asked under every metric
    (the Sec 4.3 multi-metric merge), (b) exact duplicates (wave dedup +
    cache) and (c) distinct singletons, all in flight together.
    """
    k = workload["k"]
    metrics = workload["metrics"]
    bodies: list[dict] = []
    shared = queries[0]
    for p in metrics:  # (a) shared point, several metrics
        bodies.append(_wire(shared, k, p))
    while len(bodies) < workload["identity_requests"]:
        row = queries[len(bodies) % len(queries)]
        bodies.append(_wire(row, k, metrics[len(bodies) % len(metrics)]))
    url = frontend.url + "/v1/search"
    with ThreadPoolExecutor(max_workers=len(bodies)) as pool:
        responses = list(pool.map(lambda b: _post(url, b), bodies))
    coalesced = 0
    for body, (status, payload) in zip(bodies, responses):
        if status != 200:
            raise AssertionError(f"identity request failed: {payload}")
        reference = service.search(
            np.asarray(body["query"]), body["k"], p=body["p"]
        )
        if payload["ids"] != [int(i) for i in reference.ids] or payload[
            "distances"
        ] != [float(d) for d in reference.distances]:
            raise AssertionError(
                f"coalesced answer diverged for p={body['p']}: "
                f"{payload['ids']} vs {list(reference.ids)}"
            )
        coalesced += bool(payload.get("coalesced") or payload.get("cached"))
    return {
        "requests": len(bodies),
        "shared_scans": coalesced,
        "identical": True,
    }


def run_open_loop(
    frontend: Frontend,
    queries: np.ndarray,
    workload: dict,
    offered_qps: float,
) -> dict:
    """Fire requests at a fixed offered rate; report what came back."""
    rng = np.random.default_rng(SEED + int(offered_qps))
    k = workload["k"]
    metrics = workload["metrics"]
    hot = workload["hot_queries"]
    url = frontend.url + "/v1/search"
    total = max(1, int(offered_qps * workload["duration_seconds"]))
    interval = 1.0 / offered_qps
    latencies: list[float] = []
    statuses: dict[int, int] = {}
    cached = coalesced = 0
    lock = threading.Lock()

    def one(body: dict) -> None:
        nonlocal cached, coalesced
        t0 = time.perf_counter()
        try:
            status, payload = _post(url, body)
        except (urllib.error.URLError, TimeoutError, OSError):
            status, payload = -1, {}
        elapsed = time.perf_counter() - t0
        with lock:
            statuses[status] = statuses.get(status, 0) + 1
            if status == 200:
                latencies.append(elapsed)
                cached += bool(payload.get("cached"))
                coalesced += bool(payload.get("coalesced"))

    stats_before = _get(frontend.url + "/v1/stats")
    # Open loop: a dispatcher submits on schedule regardless of how many
    # responses are outstanding; slow service => growing in-flight set
    # (up to the admission bound), exactly like independent clients.
    pool = ThreadPoolExecutor(max_workers=min(128, workload["max_pending"]))
    start = time.perf_counter()
    for i in range(total):
        target = start + i * interval
        delay = target - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        if rng.random() < workload["hot_fraction"]:
            row = queries[int(rng.integers(hot))]
        else:
            row = queries[int(rng.integers(len(queries)))]
        p = metrics[int(rng.integers(len(metrics)))]
        pool.submit(one, _wire(row, k, p))
    pool.shutdown(wait=True)
    wall = time.perf_counter() - start
    stats_after = _get(frontend.url + "/v1/stats")

    ok = statuses.get(200, 0)
    shed = statuses.get(429, 0)
    scans = stats_after["scans"] - stats_before["scans"]
    scanned = (
        stats_after["scanned_requests"] - stats_before["scanned_requests"]
    )
    hits = stats_after["cache"]["hits"] - stats_before["cache"]["hits"]
    misses = stats_after["cache"]["misses"] - stats_before["cache"]["misses"]

    def heat_rate(heat: str) -> float | None:
        """Cache hit rate for this rate step, hot/cold buckets apart."""
        before = stats_before["workload"]["cache"][heat]
        after = stats_after["workload"]["cache"][heat]
        d_hits = after["hits"] - before["hits"]
        d_lookups = d_hits + after["misses"] - before["misses"]
        return (d_hits / d_lookups) if d_lookups else None

    ordered = sorted(latencies)

    def quantile(q: float) -> float:
        if not ordered:
            return 0.0
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    return {
        "offered_qps": offered_qps,
        "requests": total,
        "wall_seconds": wall,
        "completed": ok,
        "rejected_429": shed,
        "errors": sum(
            count for status, count in statuses.items()
            if status not in (200, 429)
        ),
        "queries_per_second": ok / wall if wall else 0.0,
        "p50_seconds": quantile(0.50),
        "p99_seconds": quantile(0.99),
        "mean_seconds": (sum(ordered) / len(ordered)) if ordered else 0.0,
        "coalesce_ratio": (scanned / scans) if scans else 0.0,
        "cache_hit_rate": (
            hits / (hits + misses) if (hits + misses) else 0.0
        ),
        "cache_hit_rate_hot": heat_rate("hot"),
        "cache_hit_rate_cold": heat_rate("cold"),
        "counters": {
            "scans": scans,
            "scanned_requests": scanned,
            "cache_hits": hits,
            "coalesced_responses": coalesced,
            "cached_responses": cached,
        },
    }


def run_report(workload: dict) -> dict:
    rng = np.random.default_rng(SEED)
    data = rng.uniform(0, 100, (workload["n"], workload["d"]))
    index = LazyLSH(
        LazyLSHConfig(
            c=3.0, p_min=0.5, seed=SEED,
            mc_samples=20_000, mc_buckets=100,
        )
    ).build(data)
    queries = data[rng.integers(len(data), size=workload["pool_size"])]
    report: dict = {
        "workload": {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in workload.items()
        },
        "seed": SEED,
        "python": platform.python_version(),
    }
    with ShardedSearchService(
        index, n_shards=workload["shards"]
    ) as service, Frontend(
        service,
        coalesce_ms=workload["coalesce_ms"],
        max_pending=workload["max_pending"],
        cache_capacity=workload["cache_capacity"],
    ) as frontend:
        report["identity"] = check_identity(
            frontend, service, queries, workload
        )
        report["rates"] = [
            run_open_loop(frontend, queries, workload, qps)
            for qps in workload["offered_qps"]
        ]
    return report


def _rate(value: float | None) -> str:
    """A hit rate cell; '-' when that heat class saw no lookups."""
    return f"{value:.1%}" if value is not None else "-"


def _print_summary(report: dict) -> None:
    identity = report["identity"]
    print(
        f"identity: {identity['requests']} concurrent requests "
        f"bit-identical ({identity['shared_scans']} shared a scan/cache)"
    )
    for row in report["rates"]:
        print(
            f"offered {row['offered_qps']:7.1f} qps | sustained "
            f"{row['queries_per_second']:7.1f} qps | p50 "
            f"{row['p50_seconds'] * 1e3:7.2f} ms  p99 "
            f"{row['p99_seconds'] * 1e3:7.2f} ms | coalesce "
            f"{row['coalesce_ratio']:5.2f}x | cache hit "
            f"{row['cache_hit_rate']:5.1%} (hot {_rate(row['cache_hit_rate_hot'])}"
            f" cold {_rate(row['cache_hit_rate_cold'])}) | "
            f"shed {row['rejected_429']}"
        )


def run():
    """run_all.py hook: smoke-scale run rendered as a table."""
    from repro.eval.harness import ResultTable

    report = run_report(SMOKE)
    table = ResultTable(
        "HTTP front door under open-loop load (smoke scale)",
        [
            "offered qps", "sustained qps", "p50 ms", "p99 ms",
            "coalesce", "cache hit", "hot/cold hit", "shed",
        ],
    )
    for row in report["rates"]:
        table.add_row(
            [
                f"{row['offered_qps']:.0f}",
                f"{row['queries_per_second']:.1f}",
                f"{row['p50_seconds'] * 1e3:.2f}",
                f"{row['p99_seconds'] * 1e3:.2f}",
                f"{row['coalesce_ratio']:.2f}x",
                f"{row['cache_hit_rate']:.1%}",
                f"{_rate(row['cache_hit_rate_hot'])}/"
                f"{_rate(row['cache_hit_rate_cold'])}",
                str(row["rejected_429"]),
            ]
        )
    return [table]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-scale CI version (writes BENCH_frontend.smoke.json)",
    )
    args = parser.parse_args()
    workload = SMOKE if args.smoke else FULL
    report = run_report(workload)
    name = "BENCH_frontend.smoke.json" if args.smoke else "BENCH_frontend.json"
    out_path = Path(__file__).parent / "results" / name
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    _print_summary(report)
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main()
