"""Run every benchmark standalone and write the tables to ``results/``.

Convenience wrapper around the per-figure modules for users who want the
paper tables as plain-text files instead of pytest output:

    python benchmarks/run_all.py [--only fig9 table1 ...]

Each module's ``run()`` is executed and its tables saved to
``benchmarks/results/<module>.txt``; failures are reported but do not
stop the sweep.

Pass ``--baseline DIR`` to diff the machine-readable ``BENCH_*.json``
artifacts in ``results/`` against a previously saved baseline set after
the sweep (see ``compare.py``); regressions beyond ``--threshold`` make
the run exit nonzero.
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent

#: Execution order: cheap parameter benches first, heavy query benches last.
MODULES = [
    "bench_fig4_p1p2_curve",
    "bench_fig5_gap_vs_p",
    "bench_fig6_eta_vs_p",
    "bench_fig7_gap_vs_dim",
    "bench_appc_l2_base",
    "bench_table5_index_size",
    "bench_table4_real_index",
    "bench_fig9_io_vs_p",
    "bench_fig10_io_vs_k",
    "bench_fig11_ratio_vs_k",
    "bench_fig12_multiquery",
    "bench_fig13_rehashing",
    "bench_fig14_query_time",
    "bench_fig15_ratio_vs_c",
    "bench_fig16_time_vs_dim",
    "bench_table1_classification",
    "bench_ablation_storage",
    "bench_ablation_all_baselines",
    "bench_mmap",
    "bench_frontend",
    "bench_cluster",
]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help="substring filters; run only matching modules",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline results dir; diff BENCH_*.json artifacts after the sweep",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="regression threshold fraction for --baseline (default 0.25)",
    )
    args = parser.parse_args(argv)
    sys.path.insert(0, str(BENCH_DIR))
    results_dir = BENCH_DIR / "results"
    results_dir.mkdir(exist_ok=True)
    selected = [
        name
        for name in MODULES
        if args.only is None or any(token in name for token in args.only)
    ]
    if not selected:
        print("no benchmarks match the --only filters", file=sys.stderr)
        return 2
    failures = []
    for name in selected:
        started = time.perf_counter()
        print(f"== {name} ...", flush=True)
        try:
            module = importlib.import_module(name)
            tables = module.run()
        except Exception as exc:  # keep sweeping; report at the end
            failures.append((name, exc))
            print(f"   FAILED: {exc}")
            continue
        rendered = "\n\n".join(table.render() for table in tables)
        out_path = results_dir / f"{name}.txt"
        out_path.write_text(rendered + "\n")
        print(rendered)
        print(f"   ({time.perf_counter() - started:.1f}s -> {out_path})\n")
    if failures:
        print(f"{len(failures)} benchmark(s) failed:", file=sys.stderr)
        for name, exc in failures:
            print(f"  {name}: {exc}", file=sys.stderr)
        return 1
    print(f"all {len(selected)} benchmarks completed; tables in {results_dir}")
    if args.baseline is not None:
        import compare

        print(f"\n== comparing {results_dir} against baseline {args.baseline}")
        code = compare.main(
            [
                str(args.baseline),
                str(results_dir),
                "--threshold",
                str(args.threshold),
            ]
        )
        if code != 0:
            return code
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
