"""Ablation: every engine in the repository on one workload.

Not a single paper figure — a cross-cutting comparison of all seven
engines (LazyLSH, C2LSH, E2LSH, SRS, multi-probe LSH, LSB-forest, linear
scan) on the Inria-like dataset under l0.5 and l1, reporting overall
ratio, recall, simulated I/O and index size.  Assertions pin the paper's
qualitative landscape: the exact scan is perfect but pays the full file;
LazyLSH is the most accurate hashing method for the fractional metric
among single-index structures; SRS has the smallest index.
"""

import numpy as np

from bench_common import (
    dataset_split,
    ground_truth,
    lazy_index,
    c2lsh_index,
    srs_index,
    print_tables,
)
from repro.baselines import E2LSH, LSBForest, LinearScan, MultiProbeLSH
from repro.baselines.e2lsh import E2LSHConfig
from repro.baselines.lsb import LSBConfig
from repro.baselines.multiprobe import MultiProbeConfig
from repro.eval import overall_ratio, recall_at_k
from repro.eval.harness import ResultTable

DATASET = "inria"
K = 20


def _evaluate(engine, name: str, p: float, size_mb: float) -> list:
    split = dataset_split(DATASET)
    true_ids, true_dists = ground_truth(DATASET, K, p)
    ratios, recalls, ios = [], [], []
    for qi, query in enumerate(split.queries):
        result = engine.knn(query, K, p=p)
        if result.ids.size < K:
            # Pad missing results with the worst possible outcome so the
            # comparison never silently favours engines returning less.
            recalls.append(result.ids.size / K * recall_at_k(result.ids, true_ids[qi]))
            ratios.append(np.inf)
        else:
            ratios.append(overall_ratio(result.distances, true_dists[qi]))
            recalls.append(recall_at_k(result.ids, true_ids[qi]))
        ios.append(result.io.total)
    return [
        name,
        f"l{p:g}",
        round(float(np.mean(ratios)), 4),
        round(float(np.mean(recalls)), 3),
        round(float(np.mean(ios))),
        round(size_mb, 1),
    ]


def run() -> list[ResultTable]:
    split = dataset_split(DATASET)
    data = split.data
    lazy = lazy_index(DATASET)
    c2 = c2lsh_index(DATASET)
    srs = srs_index(DATASET)
    e2 = E2LSH(E2LSHConfig(c=2.0, seed=7)).build(data)
    multiprobe = MultiProbeLSH(MultiProbeConfig(seed=7)).build(data)
    lsb = LSBForest(LSBConfig(seed=7)).build(data)
    scan = LinearScan(data)
    table = ResultTable(
        f"All engines on {DATASET}-like data, k={K}",
        ["engine", "metric", "ratio", "recall", "avg I/O", "index MB"],
    )
    for p in (0.5, 1.0):
        table.add_row(_evaluate(lazy, "LazyLSH", p, lazy.index_size_mb()))
        table.add_row(_evaluate(c2, "C2LSH", p, c2.index_size_mb()))
        table.add_row(_evaluate(srs, "SRS", p, srs.index_size_mb()))
        table.add_row(_evaluate(e2, "E2LSH", p, e2.index_size_mb()))
        table.add_row(
            _evaluate(multiprobe, "MultiProbe", p, multiprobe.index_size_mb())
        )
        table.add_row(_evaluate(lsb, "LSB-forest", p, lsb.index_size_mb()))
        table.add_row(_evaluate(scan, "LinearScan", p, 0.0))
    return [table]


def test_ablation_all_baselines(benchmark, capsys):
    tables = benchmark.pedantic(run, rounds=1, iterations=1)
    print_tables(capsys, tables)
    rows = {(row[0], row[1]): row for row in tables[0].rows}
    # The exact scan is exact.
    assert rows[("LinearScan", "l0.5")][2] == 1.0
    # LazyLSH answers the fractional metric accurately.
    assert rows[("LazyLSH", "l0.5")][2] < 1.1
    # SRS has by far the smallest index among the hashing methods.
    srs_mb = rows[("SRS", "l0.5")][5]
    assert srs_mb < rows[("LazyLSH", "l0.5")][5]
    assert srs_mb < rows[("C2LSH", "l0.5")][5]
    # ...but worse fractional accuracy than LazyLSH (l2-bound structure).
    assert rows[("LazyLSH", "l0.5")][2] <= rows[("SRS", "l0.5")][2] + 1e-9


if __name__ == "__main__":
    for table in run():
        print(table.render())
        print()
