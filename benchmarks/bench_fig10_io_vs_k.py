"""Figure 10: average I/O per query versus the result cardinality k.

LazyLSH over the four (simulated) real datasets, k sweeping 10..100 for
each supported lp metric.  The paper reports only a slight increase of
I/O with k — returning 10x more neighbours costs a few extra I/Os, not
10x — with the per-metric ordering of Figure 9 preserved.
"""

import numpy as np

from bench_common import dataset_split, lazy_index, print_tables
from repro.eval.harness import ResultTable

DATASETS = ("inria", "mnist")
K_SWEEP = (10, 40, 70, 100)
P_VALUES = (0.5, 0.7, 1.0)


def run() -> list[ResultTable]:
    tables = []
    for name in DATASETS:
        index = lazy_index(name)
        split = dataset_split(name)
        table = ResultTable(
            f"Figure 10 ({name}): avg I/O vs k",
            ["k"] + [f"l{p:g}" for p in P_VALUES],
        )
        for k in K_SWEEP:
            row = [k]
            for p in P_VALUES:
                ios = [index.knn(q, k, p=p).io.total for q in split.queries]
                row.append(round(float(np.mean(ios))))
            table.add_row(row)
        tables.append(table)
    return tables


def test_fig10_io_vs_k(benchmark, capsys):
    tables = benchmark.pedantic(run, rounds=1, iterations=1)
    print_tables(capsys, tables)
    for table in tables:
        for col in range(1, len(P_VALUES) + 1):
            ios = [row[col] for row in table.rows]
            # Slight increase with k...
            assert ios[-1] >= ios[0]
            # ...but nowhere near proportional to the 10x larger k.
            assert ios[-1] < 5 * ios[0]
        # The Figure 9 ordering (smaller p costs more) holds per k.
        for row in table.rows:
            assert row[1] >= row[len(P_VALUES)]


if __name__ == "__main__":
    for table in run():
        print(table.render())
        print()
