"""Appendix C: why the base index must live in l1, not l2.

Two results:

1. An l2 (Gaussian) base index approximating l0.5 balls loses locality
   sensitivity (p1' < p2') once the dimensionality exceeds ~5 at c = 3 —
   so SRS-style 2-stable structures cannot serve fractional metrics.
   The l1 base stays sensitive at every tested dimensionality.
2. The alternative E2LSH-style radius objective (argmin rho, Eq. 24)
   also yields a valid radius for the l1 base; the bench compares the
   two objectives' chosen parameters.
"""

from bench_common import print_tables
from repro.core.params import ParameterEngine
from repro.errors import UnsupportedMetricError
from repro.eval.harness import ResultTable

P = 0.5
C = 3.0
D_SWEEP = (2, 3, 4, 5, 6, 8, 16, 32, 64, 128)

_MC_SAMPLES = 30_000
_MC_BUCKETS = 100


def _gap(d: int, base_p: float) -> float | None:
    engine = ParameterEngine(
        d, c=C, epsilon=0.01, beta=1e-4, base_p=base_p,
        mc_samples=_MC_SAMPLES, mc_buckets=_MC_BUCKETS, seed=7,
    )
    try:
        return engine.metric_params(P).gap
    except UnsupportedMetricError:
        return None


def run() -> list[ResultTable]:
    table = ResultTable(
        f"Appendix C: sensitivity of l1 vs l2 base index for l{P:g} (c={C:g})",
        ["d", "gap (l1 base)", "gap (l2 base)", "l2 base sensitive"],
    )
    l2_boundary = None
    for d in D_SWEEP:
        gap1 = _gap(d, 1.0)
        gap2 = _gap(d, 2.0)
        table.add_row(
            [
                d,
                round(gap1, 4) if gap1 is not None else "-",
                round(gap2, 4) if gap2 is not None else "-",
                "yes" if gap2 is not None else "no",
            ]
        )
        if gap2 is not None:
            l2_boundary = d
    objective = ResultTable(
        "Radius objective ablation (l1 base, d=128): argmax gap vs argmin rho",
        ["objective", "r_hat * d", "p1'", "p2'", "gap", "eta"],
    )
    engine = ParameterEngine(
        128, c=C, epsilon=0.01, beta=1e-4,
        mc_samples=_MC_SAMPLES, mc_buckets=_MC_BUCKETS, seed=7,
    )
    for name in ("gap", "rho"):
        params = engine.metric_params(P, objective=name)
        objective.add_row(
            [
                name,
                round(params.r_hat * 128, 3),
                round(params.p1_prime, 4),
                round(params.p2_prime, 4),
                round(params.gap, 4),
                params.eta,
            ]
        )
    summary = ResultTable("Appendix C landmarks", ["landmark", "value"])
    summary.add_row(
        ["largest d where the l2 base is still sensitive (paper ~5)", l2_boundary]
    )
    return [table, objective, summary]


def test_appc_l2_base(benchmark, capsys):
    tables = benchmark.pedantic(run, rounds=1, iterations=1)
    print_tables(capsys, tables)
    sensitivity, objective, summary = tables
    boundary = summary.rows[0][1]
    # The l2 base fails for fractional metrics beyond single-digit d.
    assert boundary is not None and boundary <= 8
    # The l1 base is sensitive at every tested dimensionality.
    assert all(row[1] != "-" for row in sensitivity.rows)
    # Both radius objectives produce locality-sensitive parameters.
    assert all(row[4] > 0 for row in objective.rows)


if __name__ == "__main__":
    for table in run():
        print(table.render())
        print()
