"""Replication plane under live write load: lag, failover, identity.

Runs a real 2-node cluster (DESIGN §16) the way an operator would — the
leader is a separate *process* (durable writer + shard fleet + front
door + WAL shipper), the follower bootstraps over the wire and tails
the stream, and a router proxies ``/v1/search`` over both:

* **Replication lag** — the leader stamps every commit's wall-clock
  time; the parent polls the follower's applied LSN and reports the
  commit-to-visible distribution (``p50_lag_seconds`` /
  ``max_lag_seconds``) over a steady write window.
* **Failover** — the leader process is SIGKILL'd mid-stream; reported
  ``failover_seconds`` is kill-to-first-successful-router-answer, which
  must be served by the follower.
* **Bit identity** — after failover, the surviving node's answers are
  compared to a single-process reference index replayed from the
  leader's WAL up to the follower's acked LSN: ids *and* distances must
  match exactly, or the run aborts.

Run ``--smoke`` for the seconds-scale CI version (writes
``BENCH_cluster.smoke.json``); the full run writes
``BENCH_cluster.json``.  Both feed ``compare.py --baseline``
(lag/failover are lower-is-better).
"""

from __future__ import annotations

import argparse
import json
import multiprocessing as mp
import os
import platform
import signal
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np

from repro import LazyLSH, LazyLSHConfig
from repro.cluster import FollowerNode, Router
from repro.durability import WAL_SUBDIR, WalFeed, create
from repro.durability.wal import apply_record

SEED = 23

FULL = {
    "n": 4_000,
    "d": 16,
    "shards": 1,
    "k": 10,
    "p": 1.0,
    "batch_rows": 4,
    "commit_interval_seconds": 0.01,
    "steady_commits": 200,
    "check_interval": 0.1,
    "failure_threshold": 2,
    "probe_timeout": 0.5,
    "identity_queries": 8,
}
SMOKE = {
    "n": 800,
    "d": 10,
    "shards": 1,
    "k": 5,
    "p": 1.0,
    "batch_rows": 4,
    "commit_interval_seconds": 0.01,
    "steady_commits": 60,
    "check_interval": 0.05,
    "failure_threshold": 2,
    "probe_timeout": 0.25,
    "identity_queries": 4,
}


def _build_index(workload: dict):
    rng = np.random.default_rng(SEED)
    data = rng.uniform(0, 100, (workload["n"], workload["d"]))
    index = LazyLSH(
        LazyLSHConfig(
            c=3.0, p_min=0.5, seed=SEED,
            mc_samples=20_000, mc_buckets=100,
        )
    ).build(data)
    return index, data


def _post(url: str, body: dict, timeout: float = 10.0) -> tuple[int, dict]:
    request = urllib.request.Request(
        url + "/v1/search",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _leader_main(home: str, workload: dict, ports_path: str) -> None:
    """Leader node process: durable writer + fleet + door + shipper.

    Commits a fresh batch every ``commit_interval_seconds`` and stamps
    each commit's wall-clock time into ``commits.log`` beside the ports
    file, so the parent can turn the follower's applied LSN into a
    commit-to-visible lag sample.  Runs until SIGKILL'd.
    """
    from repro.cluster import WalShipper
    from repro.durability import recover
    from repro.serve import Frontend, ShardedSearchService

    durable, _report = recover(home, sync=False)
    index, _data = _build_index(workload)
    # Fork the shard workers before any listening socket exists
    # (DESIGN §16: inherited fds would pin the ports past our death).
    service = ShardedSearchService(index, n_shards=workload["shards"])
    feed = WalFeed(Path(home) / WAL_SUBDIR)
    door = Frontend(service, port=0).start()
    shipper = WalShipper(home, poll_interval=0.005).start()
    commits_path = Path(ports_path).with_name("commits.log")
    Path(ports_path).write_text(
        json.dumps({"http": door.url, "ship": shipper.port})
    )
    rng = np.random.default_rng(SEED + 1)
    lsn = 0
    with commits_path.open("w", buffering=1) as commits:
        while True:
            lsn += 1
            if lsn % 7 == 0:
                durable.remove([int(rng.integers(workload["n"]))])
            else:
                durable.insert(
                    rng.uniform(
                        0, 100, (workload["batch_rows"], workload["d"])
                    )
                )
            commits.write(f"{lsn} {time.time()}\n")
            service.ingest(feed.poll())
            time.sleep(
                workload["commit_interval_seconds"]
                if lsn < workload["steady_commits"] + 20
                else 0.25
            )


def _measure_lag(
    follower: FollowerNode, commits_path: Path, workload: dict
) -> dict:
    """Sample commit-to-visible lag until the steady window completes."""
    target = workload["steady_commits"]
    commit_times: dict[int, float] = {}
    samples: list[float] = []
    seen_lsn = 0
    offset = 0
    deadline = time.monotonic() + 120
    while not commits_path.exists() and time.monotonic() < deadline:
        time.sleep(0.01)
    while seen_lsn < target and time.monotonic() < deadline:
        with commits_path.open() as fh:
            fh.seek(offset)
            chunk = fh.read()
            offset = fh.tell()
        for line in chunk.splitlines():
            lsn_text, _, stamp_text = line.partition(" ")
            if stamp_text:
                commit_times[int(lsn_text)] = float(stamp_text)
        acked = follower.acked_lsn
        now = time.time()
        for lsn in range(seen_lsn + 1, acked + 1):
            if lsn in commit_times:
                samples.append(now - commit_times[lsn])
        seen_lsn = max(seen_lsn, acked)
        time.sleep(0.002)
    if seen_lsn < target:
        raise AssertionError(
            f"follower only reached LSN {seen_lsn} of {target} "
            f"within the measurement window"
        )
    ordered = sorted(samples)
    return {
        "records": seen_lsn,
        "samples": len(ordered),
        "p50_lag_seconds": ordered[len(ordered) // 2] if ordered else 0.0,
        "max_lag_seconds": ordered[-1] if ordered else 0.0,
    }


def _check_identity(
    router: Router,
    follower: FollowerNode,
    home: Path,
    workload: dict,
    data: np.ndarray,
) -> dict:
    """Surviving node == single-process reference at the acked LSN."""
    reference, _data = _build_index(workload)
    acked = follower.acked_lsn
    for record in WalFeed(home / WAL_SUBDIR).poll():
        if record.lsn <= acked:
            apply_record(reference, record)
    rng = np.random.default_rng(SEED + 2)
    rows = rng.integers(len(data), size=workload["identity_queries"])
    for row in rows:
        query = data[int(row)]
        status, payload = _post(
            router.url,
            {
                "v": 1,
                "query": query.tolist(),
                "k": workload["k"],
                "p": workload["p"],
            },
        )
        if status != 200:
            raise AssertionError(f"identity query failed: {payload}")
        expected = reference.knn(query, workload["k"], p=workload["p"])
        if payload["ids"] != [int(i) for i in expected.ids] or payload[
            "distances"
        ] != [float(d) for d in expected.distances]:
            raise AssertionError(
                f"post-failover answer diverged from the reference "
                f"at LSN {acked}: {payload['ids']} vs {list(expected.ids)}"
            )
    return {
        "queries": int(len(rows)),
        "acked_lsn": int(acked),
        "identical": True,
    }


def run_report(workload: dict) -> dict:
    index, data = _build_index(workload)
    report: dict = {
        "workload": dict(workload),
        "seed": SEED,
        "python": platform.python_version(),
    }
    with tempfile.TemporaryDirectory(prefix="bench-cluster-") as tmp:
        tmp_path = Path(tmp)
        home = tmp_path / "leader"
        create(index, home, sync=False).close()
        ports_path = tmp_path / "ports.json"
        ctx = mp.get_context("fork")
        child = ctx.Process(
            target=_leader_main,
            args=(str(home), workload, str(ports_path)),
            daemon=False,
        )
        child.start()
        follower = router = None
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline and not ports_path.exists():
                time.sleep(0.02)
            ports = json.loads(ports_path.read_text())
            follower = FollowerNode(
                tmp_path / "follower",
                ("127.0.0.1", ports["ship"]),
                n_shards=workload["shards"],
                http_port=0,
                reconnect_min=0.02,
            ).start()
            report["replication"] = _measure_lag(
                follower, tmp_path / "commits.log", workload
            )
            router = Router(
                {"leader": ports["http"], "follower": follower.url},
                leader="leader",
                check_interval=workload["check_interval"],
                failure_threshold=workload["failure_threshold"],
                probe_timeout=workload["probe_timeout"],
                proxy_timeout=2.0,
            ).start()
            probe = {
                "v": 1,
                "query": data[0].tolist(),
                "k": workload["k"],
                "p": workload["p"],
            }
            status, payload = _post(router.url, probe)
            if status != 200 or payload.get("served_by") != "leader":
                raise AssertionError(
                    f"pre-failover routing broken: {status} {payload}"
                )
            os.kill(child.pid, signal.SIGKILL)
            killed_at = time.perf_counter()
            child.join(10)
            first_answer = None
            while time.perf_counter() - killed_at < 30:
                status, payload = _post(router.url, probe, timeout=5.0)
                if status == 200:
                    first_answer = payload
                    break
                time.sleep(0.02)
            if first_answer is None:
                raise AssertionError("router never recovered after SIGKILL")
            failover_seconds = time.perf_counter() - killed_at
            if first_answer.get("served_by") != "follower":
                raise AssertionError(
                    f"post-failover answer served by "
                    f"{first_answer.get('served_by')!r}, not the follower"
                )
            report["failover"] = {
                "failover_seconds": failover_seconds,
                "router_failovers": router.failovers,
                "served_by": first_answer["served_by"],
            }
            report["identity"] = _check_identity(
                router, follower, home, workload, data
            )
        finally:
            if router is not None:
                router.stop()
            if follower is not None:
                follower.stop()
            if child.is_alive():
                child.kill()
                child.join(10)
    return report


def _print_summary(report: dict) -> None:
    lag = report["replication"]
    failover = report["failover"]
    identity = report["identity"]
    print(
        f"replication: {lag['records']} records | lag p50 "
        f"{lag['p50_lag_seconds'] * 1e3:.1f} ms  max "
        f"{lag['max_lag_seconds'] * 1e3:.1f} ms "
        f"({lag['samples']} samples)"
    )
    print(
        f"failover: SIGKILL'd leader -> first answer in "
        f"{failover['failover_seconds']:.2f} s "
        f"(served by {failover['served_by']}, "
        f"{failover['router_failovers']} failover)"
    )
    print(
        f"identity: {identity['queries']} post-failover queries "
        f"bit-identical to the LSN-{identity['acked_lsn']} reference"
    )


def run():
    """run_all.py hook: smoke-scale run rendered as a table."""
    from repro.eval.harness import ResultTable

    report = run_report(SMOKE)
    table = ResultTable(
        "2-node replication plane (smoke scale)",
        ["records", "lag p50 ms", "lag max ms", "failover s", "identity"],
    )
    table.add_row(
        [
            str(report["replication"]["records"]),
            f"{report['replication']['p50_lag_seconds'] * 1e3:.1f}",
            f"{report['replication']['max_lag_seconds'] * 1e3:.1f}",
            f"{report['failover']['failover_seconds']:.2f}",
            "bit-identical",
        ]
    )
    return [table]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-scale CI version (writes BENCH_cluster.smoke.json)",
    )
    args = parser.parse_args()
    workload = SMOKE if args.smoke else FULL
    report = run_report(workload)
    name = "BENCH_cluster.smoke.json" if args.smoke else "BENCH_cluster.json"
    out_path = Path(__file__).parent / "results" / name
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    _print_summary(report)
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main()
