"""Figure 12: the multi-query optimisation (Section 4.3).

For each (simulated) real dataset: I/O of answering six kNN queries
(l0.5 ... l1.0, same query point) as a shared batch versus the single
l0.5 query versus six separate queries.  The paper reports the batch
costing only a few more I/Os than the single l0.5 query.
"""

import numpy as np

from bench_common import P_SWEEP, dataset_split, lazy_index, print_tables
from repro import knn_batch
from repro.eval.harness import ResultTable

DATASETS = ("inria", "sun", "labelme", "mnist")
K = 100


def run() -> list[ResultTable]:
    table = ResultTable(
        f"Figure 12: multi-query I/O, 6 metrics {list(P_SWEEP)}, k={K}",
        ["dataset", "single l0.5", "batched 6 metrics", "6 separate", "batch/single"],
    )
    for name in DATASETS:
        index = lazy_index(name)
        split = dataset_split(name)
        # All query points of a column run through the flat engine in one
        # round-synchronised knn_batch call; per-query I/O is identical to
        # issuing the queries one at a time.
        singles = [r.io.total for r in knn_batch(index, split.queries, K, p=0.5)]
        batches = [
            r.io.total
            for r in knn_batch(index, split.queries, K, metrics=P_SWEEP)
        ]
        per_metric = [
            knn_batch(index, split.queries, K, p=p).results for p in P_SWEEP
        ]
        separates = [
            sum(runs[j].io.total for runs in per_metric)
            for j in range(len(split.queries))
        ]
        single = float(np.mean(singles))
        batch = float(np.mean(batches))
        table.add_row(
            [
                name,
                round(single),
                round(batch),
                round(float(np.mean(separates))),
                round(batch / single, 3),
            ]
        )
    return [table]


def test_fig12_multiquery(benchmark, capsys):
    tables = benchmark.pedantic(run, rounds=1, iterations=1)
    print_tables(capsys, tables)
    for row in tables[0].rows:
        _name, single, batch, separate, factor = row
        # The batch costs only slightly more than the single l0.5 query...
        assert factor < 1.5
        # ...and far less than processing the metrics separately.
        assert batch < 0.5 * separate


if __name__ == "__main__":
    for table in run():
        print(table.render())
        print()
