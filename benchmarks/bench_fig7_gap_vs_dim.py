"""Figure 7: the sensitivity gap versus dimensionality, per ratio c.

Setting: l0.5 queries, c in {2..6}, d sweeping powers of two.  The paper
reports the gap (for c = 3) dipping to its minimum near d = 16 and then
growing slowly with d, and the gap increasing with c at every fixed d —
the mechanism behind Table 5b/5c's index sizes.
"""

from bench_common import print_tables
from repro.core.params import ParameterEngine
from repro.errors import UnsupportedMetricError
from repro.eval.harness import ResultTable

P = 0.5
C_SWEEP = (2.0, 3.0, 4.0, 5.0, 6.0)
D_SWEEP = (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

# Lighter Monte-Carlo resolution: this bench runs 50 (d, c) cells.
_MC_SAMPLES = 30_000
_MC_BUCKETS = 100


def run() -> list[ResultTable]:
    table = ResultTable(
        f"Figure 7: p1'-p2' vs dimensionality (l{P:g})",
        ["d"] + [f"c={int(c)}" for c in C_SWEEP],
    )
    gaps_by_c: dict[float, dict[int, float]] = {c: {} for c in C_SWEEP}
    for d in D_SWEEP:
        row: list = [d]
        for c in C_SWEEP:
            engine = ParameterEngine(
                d, c=c, epsilon=0.01, beta=1e-4,
                mc_samples=_MC_SAMPLES, mc_buckets=_MC_BUCKETS, seed=7,
            )
            try:
                gap = engine.metric_params(P).gap
            except UnsupportedMetricError:
                row.append("-")
                continue
            gaps_by_c[c][d] = gap
            row.append(round(gap, 4))
        table.add_row(row)
    summary = ResultTable("Figure 7 landmarks", ["landmark", "value"])
    c3 = gaps_by_c[3.0]
    if c3:
        dip = min(c3, key=c3.get)
        summary.add_row(["argmin-gap dimensionality for c=3 (paper ~16)", dip])
    d128 = {c: gaps_by_c[c].get(128) for c in C_SWEEP}
    summary.add_row(
        ["gap grows with c at d=128", all(
            (d128[a] or 0) <= (d128[b] or 1)
            for a, b in zip(C_SWEEP, C_SWEEP[1:])
        )]
    )
    return [table, summary]


def test_fig7_gap_vs_dim(benchmark, capsys):
    tables = benchmark.pedantic(run, rounds=1, iterations=1)
    print_tables(capsys, tables)
    landmarks = {row[0]: row[1] for row in tables[1].rows}
    dip = landmarks["argmin-gap dimensionality for c=3 (paper ~16)"]
    assert dip in (4, 8, 16, 32)
    assert landmarks["gap grows with c at d=128"] is True


if __name__ == "__main__":
    for table in run():
        print(table.render())
        print()
