"""Figure 16 (Appendix B.2): query time versus dimensionality.

Synthetic |D|=4k data, d sweeping 100..1600, multi-query batches (six
metrics) versus the linear scan.  The paper reports the scan's time
growing linearly with d while LazyLSH's stays roughly level (the number
of required hash functions even falls with d, Table 5b), so LazyLSH's
speed-up widens with dimensionality.
"""

import numpy as np

from bench_common import MC_BUCKETS, MC_SAMPLES, P_SWEEP, print_tables
from repro import LazyLSH, LazyLSHConfig, MultiQueryEngine
from repro.baselines import LinearScan
from repro.datasets import make_synthetic, sample_queries
from repro.eval.harness import ResultTable, Timer

N = 4000
D_SWEEP = (100, 200, 400, 800, 1600)
C = 4.0
K = 100
N_QUERIES = 3


def run() -> list[ResultTable]:
    table = ResultTable(
        f"Figure 16: avg multi-query time (s) vs d, |D|={N}, c={int(C)}, k={K}",
        ["d", "LazyLSH (6 metrics)", "linear scan (6 metrics)"],
    )
    for d in D_SWEEP:
        data = make_synthetic(N, d, seed=3)
        split = sample_queries(data, n_queries=N_QUERIES, seed=4)
        cfg = LazyLSHConfig(
            c=C, p_min=0.5, seed=7, mc_samples=MC_SAMPLES, mc_buckets=MC_BUCKETS
        )
        index = LazyLSH(cfg).build(split.data)
        engine = MultiQueryEngine(index)
        scan = LinearScan(split.data)
        # Warm the per-metric parameter tables (offline precomputation).
        for p in P_SWEEP:
            index.metric_params(p)
        lazy_times, scan_times = [], []
        for query in split.queries:
            with Timer() as t_lazy:
                engine.knn(query, K, P_SWEEP)
            lazy_times.append(t_lazy.seconds)
            with Timer() as t_scan:
                for p in P_SWEEP:
                    scan.knn(query, K, p=p)
            scan_times.append(t_scan.seconds)
        table.add_row(
            [
                d,
                round(float(np.mean(lazy_times)), 3),
                round(float(np.mean(scan_times)), 3),
            ]
        )
    return [table]


def test_fig16_time_vs_dim(benchmark, capsys):
    tables = benchmark.pedantic(run, rounds=1, iterations=1)
    print_tables(capsys, tables)
    rows = tables[0].rows
    scan_times = [row[2] for row in rows]
    lazy_times = [row[1] for row in rows]
    # The scan's cost grows strongly with d (near-linear).
    assert scan_times[-1] > 4.0 * scan_times[0]
    # LazyLSH's growth is much flatter: its d=1600/d=100 factor is well
    # below the scan's.
    lazy_growth = lazy_times[-1] / max(lazy_times[0], 1e-4)
    scan_growth = scan_times[-1] / max(scan_times[0], 1e-4)
    assert lazy_growth < scan_growth
    # The speed-up over scanning widens with dimensionality.
    speedup_low = scan_times[0] / max(lazy_times[0], 1e-4)
    speedup_high = scan_times[-1] / max(lazy_times[-1], 1e-4)
    assert speedup_high > speedup_low


if __name__ == "__main__":
    for table in run():
        print(table.render())
        print()
