"""Durable update plane: WAL ingest throughput and recovery latency.

Measures the two costs a durability layer adds (DESIGN.md section 11):

* **Ingest throughput** — committed insert batches per second through
  :class:`~repro.durability.wal.DurableIndex`, with fsync-on-commit on
  and off.  The gap between the two is the price of the crash-safety
  guarantee (a committed record survives power loss).
* **Recovery latency** — wall time of :func:`~repro.durability.
  checkpoint.recover` as a function of log length, with and without an
  intermediate checkpoint, pinning down the motivation for log
  compaction: replay cost grows linearly with the tail, a checkpoint
  resets it to near zero.

Every recovery is verified bit-identical (data, tombstones, inverted
lists, kNN answers) to a reference index that applied the same
mutations in-process — the benchmark doubles as an end-to-end check of
the recovery invariant.

Run ``--smoke`` for the seconds-scale CI version (writes
``BENCH_wal.smoke.json`` so checked-in full numbers are not
clobbered); the full run writes ``BENCH_wal.json``.
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import LazyLSH, LazyLSHConfig
from repro.durability import recover
from repro.durability import create as create_durable
from repro.durability.checkpoint import (
    checkpoint_now,
    states_identical,
)

FULL = {
    "n": 4000,
    "d": 16,
    "batch": 8,
    "ingest_batches": 120,
    "recovery_lengths": (0, 40, 120, 240),
}
SMOKE = {
    "n": 600,
    "d": 12,
    "batch": 4,
    "ingest_batches": 16,
    "recovery_lengths": (0, 8, 16),
}

SEED = 7


def _build(workload: dict) -> tuple[LazyLSH, np.ndarray]:
    rng = np.random.default_rng(SEED)
    data = rng.standard_normal((workload["n"], workload["d"]))
    index = LazyLSH(LazyLSHConfig(seed=SEED)).build(data)
    return index, data


def _fresh_batches(workload: dict, count: int) -> list[np.ndarray]:
    rng = np.random.default_rng(SEED + 1)
    return [
        rng.standard_normal((workload["batch"], workload["d"]))
        for _ in range(count)
    ]


def bench_ingest(workload: dict) -> dict:
    """Committed records/s and points/s with fsync on vs off."""
    batches = _fresh_batches(workload, workload["ingest_batches"])
    out = {}
    for sync in (True, False):
        index, _ = _build(workload)
        home = Path(tempfile.mkdtemp(prefix="bench-wal-"))
        durable = create_durable(index, home, sync=sync)
        try:
            start = time.perf_counter()
            for batch in batches:
                durable.insert(batch)
            elapsed = time.perf_counter() - start
            records = len(batches)
            points = records * workload["batch"]
            out["fsync" if sync else "no_fsync"] = {
                "records": records,
                "points": points,
                "wall_seconds": elapsed,
                "records_per_second": records / elapsed,
                "points_per_second": points / elapsed,
            }
        finally:
            durable.close()
            shutil.rmtree(home, ignore_errors=True)
    out["fsync_cost_factor"] = (
        out["no_fsync"]["records_per_second"]
        / out["fsync"]["records_per_second"]
    )
    return out


def bench_recovery(workload: dict) -> dict:
    """Recovery wall time vs WAL tail length, verified bit-identical."""
    rng = np.random.default_rng(SEED + 2)
    rows = []
    for length in workload["recovery_lengths"]:
        for compacted in (False, True):
            if compacted and length == 0:
                continue
            index, data = _build(workload)
            reference = LazyLSH(LazyLSHConfig(seed=SEED)).build(data)
            home = Path(tempfile.mkdtemp(prefix="bench-wal-"))
            durable = create_durable(index, home, sync=False)
            try:
                batches = _fresh_batches(workload, max(length, 1))
                for i in range(length):
                    durable.insert(batches[i])
                    reference.insert(batches[i])
                    if rng.random() < 0.25 and reference.num_points > 2:
                        victim = int(
                            rng.integers(0, reference.num_rows)
                        )
                        if reference._alive[victim]:
                            durable.remove([victim])
                            reference.remove([victim])
                if compacted:
                    checkpoint_now(durable, home)
                durable.close()
                start = time.perf_counter()
                recovered, report = recover(home, sync=False)
                elapsed = time.perf_counter() - start
                queries = data[:4]
                identical = states_identical(
                    recovered.index, reference, queries=queries, k=5
                )
                recovered.close()
                if not identical:
                    raise AssertionError(
                        f"recovered state diverged at log length {length} "
                        f"(compacted={compacted})"
                    )
                rows.append(
                    {
                        "log_records": length,
                        "compacted": compacted,
                        "replayed_records": report["replayed_records"],
                        "recovery_seconds": elapsed,
                        "live_points": report["live_points"],
                        "identical_to_reference": True,
                    }
                )
            finally:
                shutil.rmtree(home, ignore_errors=True)
    return {"rows": rows}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-scale CI version (writes BENCH_wal.smoke.json)",
    )
    args = parser.parse_args()
    workload = SMOKE if args.smoke else FULL
    report = {
        "workload": {
            k: list(v) if isinstance(v, tuple) else v
            for k, v in workload.items()
        },
        "seed": SEED,
        "python": platform.python_version(),
        "ingest": bench_ingest(workload),
        "recovery": bench_recovery(workload),
    }
    name = "BENCH_wal.smoke.json" if args.smoke else "BENCH_wal.json"
    out_path = Path(__file__).parent / "results" / name
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    ingest = report["ingest"]
    print(
        f"ingest: {ingest['fsync']['records_per_second']:.0f} rec/s fsync, "
        f"{ingest['no_fsync']['records_per_second']:.0f} rec/s no-fsync "
        f"(cost factor {ingest['fsync_cost_factor']:.1f}x)"
    )
    for row in report["recovery"]["rows"]:
        print(
            f"recovery: {row['log_records']:4d} records "
            f"{'(compacted) ' if row['compacted'] else '            '}"
            f"replayed={row['replayed_records']:4d} "
            f"{row['recovery_seconds'] * 1e3:8.1f} ms  identical=True"
        )
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main()
