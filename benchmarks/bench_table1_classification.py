"""Table 1: 1NN classification accuracy under different lp metrics.

Nine labelled datasets (simulated stand-ins calibrated so exact-l1-1NN
accuracy lands near the paper's "Real 1NN" column); for each, the exact
l1 1NN accuracy versus LazyLSH's approximate 1NN under l0.5 ... l1.0.
The paper's two findings checked here:

1. approximate 1NN classifies about as well as exact 1NN,
2. the best metric varies across datasets (no single p wins everywhere).
"""

from bench_common import print_tables
from repro import LazyLSH, LazyLSHConfig
from repro.datasets import LABELED_DATASET_NAMES, make_labeled_dataset
from repro.eval import classification_accuracy
from repro.eval.harness import ResultTable

P_VALUES = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
N_TEST = 60

#: Paper Table 1 "Real 1NN" column, for the calibration check.
PAPER_EXACT = {
    "ionosphere": 90.9,
    "musk": 93.5,
    "bcw": 92.8,
    "svs": 67.5,
    "segmentation": 91.9,
    "gisette": 96.2,
    "sls": 90.0,
    "sun": 9.5,
    "mnist": 96.3,
}


def run() -> list[ResultTable]:
    table = ResultTable(
        "Table 1: 1NN classification accuracy (%)",
        ["dataset", "paper l1", "exact l1"]
        + [f"l{p:g}" for p in P_VALUES]
        + ["best p"],
    )
    for name in LABELED_DATASET_NAMES:
        dataset = make_labeled_dataset(name, seed=7)
        x_tr, y_tr, x_te, y_te = dataset.split(N_TEST, seed=1)
        exact = classification_accuracy(x_tr, y_tr, x_te, y_te, k=1, p=1.0)
        cfg = LazyLSHConfig(
            c=3.0, p_min=0.5, seed=7, mc_samples=30_000, mc_buckets=100
        )
        index = LazyLSH(cfg).build(x_tr)
        row: list = [name, PAPER_EXACT[name], round(100 * exact, 1)]
        best_p, best_acc = None, -1.0
        for p in P_VALUES:
            acc = classification_accuracy(
                x_tr, y_tr, x_te, y_te, k=1, p=p, retriever=index
            )
            row.append(round(100 * acc, 1))
            if acc > best_acc:
                best_p, best_acc = p, acc
        row.append(f"l{best_p:g}")
        table.add_row(row)
    return [table]


def test_table1_classification(benchmark, capsys):
    tables = benchmark.pedantic(run, rounds=1, iterations=1)
    print_tables(capsys, tables)
    rows = tables[0].rows
    best_ps = set()
    for row in rows:
        name, paper_exact, exact = row[0], row[1], row[2]
        approx = row[3 : 3 + len(P_VALUES)]
        # The stand-in's exact accuracy was calibrated to the paper's.
        assert abs(exact - paper_exact) < 12.0
        # Finding 1: approximate 1NN is competitive with exact 1NN
        # (best approximate metric within a few points of exact l1).
        assert max(approx) >= exact - 8.0
        best_ps.add(row[-1])
    # Finding 2: the optimal metric is dataset-dependent.
    assert len(best_ps) >= 2


if __name__ == "__main__":
    for table in run():
        print(table.render())
        print()
