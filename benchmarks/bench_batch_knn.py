"""Flat-engine batch kNN throughput versus the looped scalar path.

The acceptance workload of the flat execution engine: a 64-query batch
over a synthetic n=10k, d=50 dataset at k=10, p=0.5, answered

* by the seed scalar path, one ``index.knn(..., engine="scalar")`` call
  per query, and
* by one round-synchronised ``knn_batch`` call on the flat engine.

The script verifies the two plans return bit-identical results and
identical per-query I/O counts, then writes wall-clock / throughput /
I/O numbers to ``benchmarks/results/BENCH_batch_knn.json``.

Run ``--quick`` for a seconds-scale smoke version of the same pipeline
(used by CI; writes ``BENCH_batch_knn.quick.json`` so the checked-in
full-workload numbers are not clobbered).

``--trace`` additionally re-runs the flat plan with telemetry enabled,
writes one structured :class:`~repro.obs.QueryTrace` per query next to
the result JSON (``*.trace.jsonl``), checks every trace's per-round I/O
deltas sum exactly to the untraced run's totals, and reports the traced
run's overhead.
"""

from __future__ import annotations

import argparse
import json
import platform
from pathlib import Path

import numpy as np

from repro import LazyLSH, LazyLSHConfig, Telemetry, knn_batch
from repro.datasets import make_synthetic, sample_queries
from repro.eval.harness import Timer, time_knn_batch
from repro.obs import load_traces_jsonl

FULL = {"n": 10_000, "d": 50, "k": 10, "p": 0.5, "n_queries": 64}
QUICK = {"n": 2_000, "d": 20, "k": 10, "p": 0.5, "n_queries": 16}

MC_SAMPLES = 50_000
MC_BUCKETS = 150
SEED = 7


def _results_match(scalar, flat) -> tuple[bool, bool]:
    """(results bit-identical, per-query I/O identical) across the batch."""
    same_results = all(
        np.array_equal(a.ids, b.ids)
        and np.array_equal(a.distances, b.distances)
        and a.rounds == b.rounds
        and a.candidates == b.candidates
        for a, b in zip(scalar, flat)
    )
    same_io = all(
        a.io.sequential == b.io.sequential and a.io.random == b.io.random
        for a, b in zip(scalar, flat)
    )
    return same_results, same_io


def _traced_run(index, split, workload: dict, flat, t_flat: float, out_path: Path) -> dict:
    """Re-run the flat plan traced; verify and export the traces.

    Every query must emit exactly one trace whose summed per-round I/O
    deltas equal the untraced run's per-query totals *exactly* — the
    trace is an audit log of the simulated cost model, not a sample.
    """
    k, p = workload["k"], workload["p"]
    telemetry = Telemetry()
    traced, t_traced = time_knn_batch(
        index, split.queries, k, p=p, telemetry=telemetry
    )
    if len(telemetry.traces) != len(traced.results):
        raise AssertionError(
            f"expected one trace per query, got {len(telemetry.traces)} "
            f"traces for {len(traced.results)} queries"
        )
    for j, (trace, untraced_result) in enumerate(
        zip(telemetry.traces, flat.results)
    ):
        delta_sum = trace.io_delta_sum()
        if (
            delta_sum.sequential != untraced_result.io.sequential
            or delta_sum.random != untraced_result.io.random
        ):
            raise AssertionError(
                f"query {j}: trace I/O delta sum {delta_sum} != untraced "
                f"totals {untraced_result.io}"
            )
    trace_path = out_path.parent / (out_path.stem + ".trace.jsonl")
    telemetry.export_traces_jsonl(trace_path)
    load_traces_jsonl(trace_path)  # schema round-trip
    return {
        "path": str(trace_path),
        "traces": len(telemetry.traces),
        "seconds": round(t_traced, 4),
        "overhead_vs_untraced": round(t_traced / t_flat - 1.0, 4),
        "terminations": telemetry.summary()["terminations"],
    }


def run(workload: dict, out_path: Path, trace: bool = False) -> dict:
    n, d, k, p = workload["n"], workload["d"], workload["k"], workload["p"]
    n_queries = workload["n_queries"]
    data = make_synthetic(n, d, seed=SEED)
    split = sample_queries(data, n_queries=n_queries, seed=SEED + 1)
    cfg = LazyLSHConfig(
        c=3.0, p_min=0.5, seed=SEED, mc_samples=MC_SAMPLES, mc_buckets=MC_BUCKETS
    )
    index = LazyLSH(cfg).build(split.data)
    index.metric_params(p)  # warm the offline parameter tables

    with Timer() as t_scalar:
        scalar = knn_batch(index, split.queries, k, p=p, engine="scalar")
    flat, t_flat = time_knn_batch(index, split.queries, k, p=p)

    same_results, same_io = _results_match(scalar.results, flat.results)
    if not same_results:
        raise AssertionError("flat engine results diverge from the scalar path")
    if not same_io:
        raise AssertionError("flat engine per-query I/O diverges from the scalar path")

    speedup = t_scalar.seconds / t_flat
    traced_report = (
        _traced_run(index, split, workload, flat, t_flat, out_path)
        if trace
        else None
    )
    report = {
        "workload": {**workload, "eta": index.eta, "c": cfg.c},
        "scalar": {
            "seconds": round(t_scalar.seconds, 4),
            "queries_per_second": round(n_queries / t_scalar.seconds, 2),
            "io": {"sequential": scalar.io.sequential, "random": scalar.io.random},
        },
        "flat": {
            "seconds": round(t_flat, 4),
            "queries_per_second": round(n_queries / t_flat, 2),
            "io": {"sequential": flat.io.sequential, "random": flat.io.random},
        },
        "speedup": round(speedup, 2),
        "bit_identical_results": same_results,
        "per_query_io_identical": same_io,
        "python": platform.python_version(),
    }
    if traced_report is not None:
        report["traced"] = traced_report
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="seconds-scale smoke workload (CI)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="re-run the flat plan with telemetry; write QueryTrace JSONL",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="result JSON path (defaults to benchmarks/results/)",
    )
    args = parser.parse_args()
    workload = QUICK if args.quick else FULL
    default_name = (
        "BENCH_batch_knn.quick.json" if args.quick else "BENCH_batch_knn.json"
    )
    out_path = args.out or Path(__file__).parent / "results" / default_name
    report = run(workload, out_path, trace=args.trace)
    print(json.dumps(report, indent=2))
    if not args.quick and report["speedup"] < 5.0:
        raise SystemExit(
            f"flat-engine speedup {report['speedup']}x below the 5x target"
        )


if __name__ == "__main__":
    main()
