"""Shared infrastructure for the benchmark suite.

Every bench module regenerates one table or figure of the paper.  This
module centralises:

* the scaled-down workload definitions (dataset sizes, query counts),
* process-wide caches of built indexes (several benches share the same
  LazyLSH/C2LSH index over the same dataset),
* query-evaluation helpers returning (I/O, overall ratio, recall) series.

Scale note (see DESIGN.md section 7): cardinalities are reduced from the
paper's millions to thousands so the pure-Python suite completes in
minutes; all sweep axes (p, k, c, d) match the paper's.
"""

from __future__ import annotations

import numpy as np

from repro import LazyLSH, LazyLSHConfig
from repro.baselines import C2LSH, SRS
from repro.baselines.c2lsh import C2LSHConfig
from repro.baselines.srs import SRSConfig
from repro.datasets import exact_knn, load_simulated, sample_queries
from repro.datasets.queries import QuerySplit
from repro.eval import overall_ratio, recall_at_k

#: Per-dataset cardinality used by the query benches (paper: 60k - 4.4m).
BENCH_CARDINALITY = {
    "inria": 6000,
    "sun": 3000,
    "labelme": 3000,
    "mnist": 3000,
}

#: Queries per dataset (paper: 50).
N_QUERIES = 6

#: The fractional-metric sweep of Figures 9-12.
P_SWEEP = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)

#: Monte-Carlo resolution for the parameter engine inside benches.
MC_SAMPLES = 50_000
MC_BUCKETS = 150

_SEED = 7

_splits: dict[str, QuerySplit] = {}
_lazy_indexes: dict[tuple, LazyLSH] = {}
_c2_indexes: dict[str, C2LSH] = {}
_srs_indexes: dict[str, SRS] = {}
_ground_truth: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}


def dataset_split(name: str) -> QuerySplit:
    """The (data, queries) split of one simulated real dataset, cached."""
    split = _splits.get(name)
    if split is None:
        points = load_simulated(name, n=BENCH_CARDINALITY[name], seed=_SEED)
        split = sample_queries(points, n_queries=N_QUERIES, seed=_SEED + 1)
        _splits[name] = split
    return split


def lazy_index(name: str, *, rehashing: str = "query_centric") -> LazyLSH:
    """A LazyLSH index over dataset ``name`` (paper defaults), cached."""
    key = (name, rehashing)
    index = _lazy_indexes.get(key)
    if index is None:
        cfg = LazyLSHConfig(
            c=3.0,
            p_min=0.5,
            seed=_SEED,
            mc_samples=MC_SAMPLES,
            mc_buckets=MC_BUCKETS,
        )
        index = LazyLSH(cfg, rehashing=rehashing).build(dataset_split(name).data)
        _lazy_indexes[key] = index
    return index


def c2lsh_index(name: str) -> C2LSH:
    """A C2LSH comparator index over dataset ``name``, cached."""
    index = _c2_indexes.get(name)
    if index is None:
        index = C2LSH(C2LSHConfig(c=3.0, seed=_SEED)).build(dataset_split(name).data)
        _c2_indexes[name] = index
    return index


def srs_index(name: str) -> SRS:
    """An SRS comparator index over dataset ``name``, cached."""
    index = _srs_indexes.get(name)
    if index is None:
        index = SRS(SRSConfig(c=3.0, seed=_SEED)).build(dataset_split(name).data)
        _srs_indexes[name] = index
    return index


def ground_truth(name: str, k: int, p: float) -> tuple[np.ndarray, np.ndarray]:
    """Exact kNN ids/distances for dataset ``name``'s query set, cached."""
    key = (name, k, round(p, 6))
    truth = _ground_truth.get(key)
    if truth is None:
        split = dataset_split(name)
        truth = exact_knn(split.data, split.queries, k, p)
        _ground_truth[key] = truth
    return truth


def evaluate_engine(engine, name: str, k: int, p: float) -> dict[str, float]:
    """Average I/O / ratio / recall of ``engine.knn`` over the query set."""
    split = dataset_split(name)
    true_ids, true_dists = ground_truth(name, k, p)
    ios, ratios, recalls = [], [], []
    for qi, query in enumerate(split.queries):
        result = engine.knn(query, k, p=p)
        ios.append(result.io.total)
        ratios.append(overall_ratio(result.distances, true_dists[qi]))
        recalls.append(recall_at_k(result.ids, true_ids[qi]))
    return {
        "io": float(np.mean(ios)),
        "ratio": float(np.mean(ratios)),
        "recall": float(np.mean(recalls)),
    }


def print_tables(capsys, tables) -> None:
    """Print result tables past pytest's output capture."""
    rendered = "\n\n".join(t.render() for t in tables)
    if capsys is None:
        print(rendered)
        return
    with capsys.disabled():
        print("\n" + rendered + "\n")
