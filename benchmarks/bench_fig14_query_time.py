"""Figure 14 (Appendix B.2): wall-clock query time with multi-query
optimisation versus the linear scan.

Synthetic d=400 data, c in {3..6}.  The paper reports: (1) linear-scan
time explodes when six metrics are answered separately while LazyLSH's
batched time stays at the single-query level; (2) LazyLSH's time falls
as c grows (smaller index, fewer I/Os).

Absolute times are pure-Python and not comparable to the paper's C++
numbers; the *relationships* are what the assertions check.
"""

import numpy as np

from bench_common import MC_BUCKETS, MC_SAMPLES, P_SWEEP, print_tables
from repro import LazyLSH, LazyLSHConfig
from repro.baselines import LinearScan
from repro.datasets import make_synthetic, sample_queries
from repro.eval.harness import ResultTable, Timer, time_knn_batch

N = 4000
D = 400
C_SWEEP = (3.0, 4.0, 5.0, 6.0)
K = 100
N_QUERIES = 3


def run() -> list[ResultTable]:
    data = make_synthetic(N, D, seed=3)
    split = sample_queries(data, n_queries=N_QUERIES, seed=4)
    table = ResultTable(
        f"Figure 14: avg query time (s), |D|={N}, d={D}, k={K}",
        ["engine", "single l0.5", "multi (6 metrics)"],
    )
    for c in C_SWEEP:
        cfg = LazyLSHConfig(
            c=c, p_min=0.5, seed=7, mc_samples=MC_SAMPLES, mc_buckets=MC_BUCKETS
        )
        index = LazyLSH(cfg).build(split.data)
        # Warm the per-metric parameter tables: Algorithm 2 is an offline
        # precomputation in the paper and must not pollute query timing.
        for p in P_SWEEP:
            index.metric_params(p)
        # Each column runs the whole query workload through one flat-engine
        # knn_batch call; reported times are per query.
        _, t_single = time_knn_batch(index, split.queries, K, p=0.5)
        _, t_multi = time_knn_batch(index, split.queries, K, metrics=P_SWEEP)
        table.add_row(
            [
                f"LazyLSH c={int(c)}",
                round(t_single / len(split.queries), 3),
                round(t_multi / len(split.queries), 3),
            ]
        )
    scan = LinearScan(split.data)
    scan_single, scan_multi = [], []
    for query in split.queries:
        with Timer() as t_single:
            scan.knn(query, K, p=0.5)
        scan_single.append(t_single.seconds)
        with Timer() as t_multi:
            for p in P_SWEEP:
                scan.knn(query, K, p=p)
        scan_multi.append(t_multi.seconds)
    table.add_row(
        [
            "linear scan",
            round(float(np.mean(scan_single)), 3),
            round(float(np.mean(scan_multi)), 3),
        ]
    )
    return [table]


def test_fig14_query_time(benchmark, capsys):
    tables = benchmark.pedantic(run, rounds=1, iterations=1)
    print_tables(capsys, tables)
    rows = {row[0]: row for row in tables[0].rows}
    scan_row = rows["linear scan"]
    # Scanning six metrics costs ~6x the single scan...
    assert scan_row[2] > 3.0 * scan_row[1]
    for c in (3, 4, 5, 6):
        lazy_row = rows[f"LazyLSH c={c}"]
        # ...while LazyLSH's batch stays within ~3x of its single query
        # (the paper shows near-1x; Python per-metric overhead adds some).
        assert lazy_row[2] < 3.0 * max(lazy_row[1], 1e-4)
    # Query time falls (or stays level) as c grows.
    times = [rows[f"LazyLSH c={c}"][2] for c in (3, 4, 5, 6)]
    assert times[-1] <= times[0] * 1.2


if __name__ == "__main__":
    for table in run():
        print(table.render())
        print()
