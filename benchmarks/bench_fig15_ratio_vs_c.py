"""Figure 15 (Appendix B.2): overall ratio versus the approximation
ratio c, per lp space.

Synthetic d=400 data.  The paper reports the ratio staying below 1.1
even at c = 6 — so large c is a viable speed/accuracy trade — and the
ratio generally growing with c.
"""

import numpy as np

from bench_common import MC_BUCKETS, MC_SAMPLES, P_SWEEP, print_tables
from repro import LazyLSH, LazyLSHConfig
from repro.datasets import exact_knn, make_synthetic, sample_queries
from repro.eval import overall_ratio
from repro.eval.harness import ResultTable

N = 4000
D = 400
C_SWEEP = (3.0, 4.0, 5.0, 6.0)
K = 100
N_QUERIES = 4


def run() -> list[ResultTable]:
    data = make_synthetic(N, D, seed=3)
    split = sample_queries(data, n_queries=N_QUERIES, seed=4)
    truth = {
        p: exact_knn(split.data, split.queries, K, p) for p in P_SWEEP
    }
    table = ResultTable(
        f"Figure 15: avg overall ratio vs c, |D|={N}, d={D}, k={K}",
        ["c"] + [f"l{p:g}" for p in P_SWEEP],
    )
    for c in C_SWEEP:
        cfg = LazyLSHConfig(
            c=c, p_min=0.5, seed=7, mc_samples=MC_SAMPLES, mc_buckets=MC_BUCKETS
        )
        index = LazyLSH(cfg).build(split.data)
        row: list = [int(c)]
        for p in P_SWEEP:
            _, true_dists = truth[p]
            ratios = [
                overall_ratio(index.knn(q, K, p=p).distances, true_dists[qi])
                for qi, q in enumerate(split.queries)
            ]
            row.append(round(float(np.mean(ratios)), 4))
        table.add_row(row)
    return [table]


def test_fig15_ratio_vs_c(benchmark, capsys):
    tables = benchmark.pedantic(run, rounds=1, iterations=1)
    print_tables(capsys, tables)
    rows = tables[0].rows
    # Even at c = 6 the ratio stays below 1.1 in every space (the
    # paper's headline finding for this figure).
    for row in rows:
        assert all(v < 1.1 for v in row[1:])
    # Larger c is never dramatically better than smaller c (weak
    # monotonicity: compare c=3 vs c=6 averaged over spaces).
    mean_c3 = np.mean(rows[0][1:])
    mean_c6 = np.mean(rows[-1][1:])
    assert mean_c6 >= mean_c3 - 0.02


if __name__ == "__main__":
    for table in run():
        print(table.render())
        print()
