"""Storage backends: mmap vs eager cold start, resident memory, real I/O.

Measures what the zero-copy mmap backend (DESIGN.md section 12) buys and
what it costs, against the eager loader on the same format-v3 file:

* **Cold start** — wall time of ``load_index`` in a fresh process.  The
  eager path reads and materialises every section, so it grows linearly
  with the file; the mmap path only parses the superblock and maps the
  sections, so it stays flat no matter how large the index is.
* **Resident memory** — peak-RSS delta of that fresh process over an
  import-only baseline.  An eager open pays the full index size up
  front; a mapped open pays only the pages the queries actually touch,
  which is how bigger-than-RAM datasets become servable.
* **First-touch vs warm-cache latency** — the first query against a
  mapped index page-faults its search path in; repeats hit the OS page
  cache.  The gap is the real price of lazy loading.
* **Real vs simulated I/O** — ``/proc/self/io`` read bytes and major
  faults alongside the paper's simulated ``PageTracker`` charge, which
  is backend-independent by construction (and asserted identical here).
* **Worker start** — ``ShardedSearchService`` construction time with
  shm packing vs mmap attach (workers open the same file, O(1)).

Every configuration asserts bit-identical kNN answers (ids, distances,
simulated I/O, termination) between the eager and mapped opens — the
benchmark doubles as an end-to-end identity check.

Run ``--smoke`` for the seconds-scale CI version (writes
``BENCH_mmap.smoke.json`` so checked-in full numbers are not
clobbered); the full run writes ``BENCH_mmap.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import LazyLSH, LazyLSHConfig
from repro.persistence import load_index, save_index

FULL = {
    "sizes": ((2_000, 16), (8_000, 16), (20_000, 16)),
    "p_min": 0.5,
    "k": 10,
    "p": 1.0,
    "shards": 2,
}
SMOKE = {
    "sizes": ((600, 12), (1_200, 12)),
    "p_min": 0.5,
    "k": 5,
    "p": 1.0,
    "shards": 2,
}

SEED = 7

_CHILD_TEMPLATE = r"""
import json, resource, sys, time

def proc_io():
    try:
        with open("/proc/self/io") as fh:
            return dict(
                (k, int(v)) for k, v in
                (line.strip().split(": ") for line in fh)
            )
    except OSError:
        return dict()

def rss_now_kb():
    # Current resident set, not the ru_maxrss peak: the import
    # transient would otherwise mask small post-import deltas.
    try:
        with open("/proc/self/statm") as fh:
            pages = int(fh.read().split()[1])
        import os as _os
        return pages * _os.sysconf("SC_PAGE_SIZE") // 1024
    except OSError:
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

t0 = time.perf_counter()
import numpy as np
from repro.persistence import load_index
import_seconds = time.perf_counter() - t0
usage = resource.getrusage(resource.RUSAGE_SELF)
baseline_kb = rss_now_kb()
io0, flt0 = proc_io(), usage.ru_majflt

path, backend, k, p = {path!r}, {backend!r}, {k}, {p}
t0 = time.perf_counter()
index = load_index(path, backend=backend)
open_seconds = time.perf_counter() - t0

query = np.array(index.data[0])
t0 = time.perf_counter()
first = index.knn(query, k, p=p)
first_seconds = time.perf_counter() - t0
warm = []
for _ in range(3):
    t0 = time.perf_counter()
    index.knn(query, k, p=p)
    warm.append(time.perf_counter() - t0)

usage = resource.getrusage(resource.RUSAGE_SELF)
io1 = proc_io()
print(json.dumps({{
    "import_seconds": import_seconds,
    "open_seconds": open_seconds,
    "first_query_seconds": first_seconds,
    "warm_query_seconds": min(warm),
    "rss_delta_kb": rss_now_kb() - baseline_kb,
    "peak_rss_kb": usage.ru_maxrss,
    "major_faults": usage.ru_majflt - flt0,
    "read_bytes": io1.get("read_bytes", 0) - io0.get("read_bytes", 0),
    "ids": [int(i) for i in first.ids],
    "distances": [float(d) for d in first.distances],
    "sim_io": {{"sequential": first.io.sequential,
                "random": first.io.random}},
    "termination": first.termination,
    "backend": index.storage_info()["backend"],
}}))
"""


def _run_child(path: Path, backend: str, k: int, p: float) -> dict:
    """Measure one cold open + query in a fresh interpreter."""
    code = _CHILD_TEMPLATE.format(path=str(path), backend=backend, k=k, p=p)
    env = dict(os.environ)
    src = Path(__file__).resolve().parent.parent / "src"
    env["PYTHONPATH"] = f"{src}{os.pathsep}{env.get('PYTHONPATH', '')}"
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, env=env, check=True,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def _evict(path: Path) -> bool:
    """Best-effort page-cache eviction so first-touch faults are real."""
    try:
        fd = os.open(path, os.O_RDONLY)
        try:
            os.posix_fadvise(fd, 0, 0, os.POSIX_FADV_DONTNEED)
        finally:
            os.close(fd)
        return True
    except (OSError, AttributeError):
        return False


def _service_start_seconds(index, n_shards: int, attach: str) -> float:
    from repro.serve import ShardedSearchService

    t0 = time.perf_counter()
    service = ShardedSearchService(index, n_shards=n_shards, attach=attach)
    elapsed = time.perf_counter() - t0
    service.close()
    return elapsed


def bench_size(
    n: int, d: int, workload: dict, scratch: Path, *, check_sharded: bool
) -> dict:
    rng = np.random.default_rng(SEED)
    data = rng.standard_normal((n, d))
    index = LazyLSH(
        LazyLSHConfig(p_min=workload["p_min"], seed=SEED, mc_samples=50_000)
    ).build(data)
    path = scratch / f"idx-{n}x{d}.npz"
    save_index(index, path, format_version=3)
    file_bytes = path.stat().st_size

    k, p = workload["k"], workload["p"]
    row = {
        "n": n,
        "d": d,
        "eta": int(index.eta),
        "file_bytes": int(file_bytes),
        "evicted_page_cache": _evict(path),
    }
    row["eager"] = _run_child(path, "eager", k, p)
    _evict(path)
    row["mmap"] = _run_child(path, "mmap", k, p)

    identical = (
        row["eager"]["ids"] == row["mmap"]["ids"]
        and row["eager"]["distances"] == row["mmap"]["distances"]
        and row["eager"]["sim_io"] == row["mmap"]["sim_io"]
        and row["eager"]["termination"] == row["mmap"]["termination"]
    )
    if not identical:
        raise AssertionError(
            f"eager/mmap answers diverged at n={n}: "
            f"{row['eager']['ids']} vs {row['mmap']['ids']}"
        )
    row["identical"] = True

    mmap_index = load_index(path, backend="mmap")
    row["service_start"] = {
        "shm_seconds": _service_start_seconds(
            index, workload["shards"], "shm"
        ),
        "mmap_seconds": _service_start_seconds(
            mmap_index, workload["shards"], "mmap"
        ),
    }
    if check_sharded:
        from repro.serve import ShardedSearchService

        queries = data[:4]
        with ShardedSearchService(
            index, n_shards=workload["shards"]
        ) as shm_svc, ShardedSearchService(
            mmap_index, n_shards=workload["shards"], attach="mmap"
        ) as mm_svc:
            for query in queries:
                a = shm_svc.search(query, k, p=p)
                b = mm_svc.search(query, k, p=p)
                if not (
                    np.array_equal(a.ids, b.ids)
                    and np.array_equal(a.distances, b.distances)
                    and a.io.sequential == b.io.sequential
                    and a.io.random == b.io.random
                    and a.termination == b.termination
                ):
                    raise AssertionError(
                        f"sharded shm/mmap answers diverged at n={n}"
                    )
        row["sharded_identical"] = True
    return row


def run_report(workload: dict, *, check_sharded: bool) -> dict:
    scratch = Path(tempfile.mkdtemp(prefix="bench-mmap-"))
    try:
        rows = [
            bench_size(n, d, workload, scratch, check_sharded=check_sharded)
            for n, d in workload["sizes"]
        ]
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    return {
        "workload": {
            k: [list(s) for s in v] if k == "sizes" else v
            for k, v in workload.items()
        },
        "seed": SEED,
        "python": platform.python_version(),
        "sizes": rows,
    }


def _print_summary(report: dict) -> None:
    for row in report["sizes"]:
        eager, mapped = row["eager"], row["mmap"]
        print(
            f"n={row['n']:6d} file={row['file_bytes'] / 1e6:8.1f} MB | "
            f"open eager {eager['open_seconds'] * 1e3:8.1f} ms / "
            f"mmap {mapped['open_seconds'] * 1e3:6.1f} ms | "
            f"rss eager {eager['rss_delta_kb'] / 1024:7.1f} MB / "
            f"mmap {mapped['rss_delta_kb'] / 1024:6.1f} MB | "
            f"first {mapped['first_query_seconds'] * 1e3:7.1f} ms "
            f"warm {mapped['warm_query_seconds'] * 1e3:6.2f} ms | "
            f"identical={row['identical']}"
        )
        svc = row["service_start"]
        print(
            f"          service start: shm "
            f"{svc['shm_seconds'] * 1e3:8.1f} ms, mmap "
            f"{svc['mmap_seconds'] * 1e3:8.1f} ms"
        )


def run():
    """run_all.py hook: smoke-scale run rendered as a table."""
    from repro.eval.harness import ResultTable

    report = run_report(SMOKE, check_sharded=True)
    table = ResultTable(
        "storage backends: eager vs mmap (smoke scale)",
        [
            "n", "file MB", "eager open ms", "mmap open ms",
            "eager RSS MB", "mmap RSS MB", "first ms", "warm ms",
            "identical",
        ],
    )
    for row in report["sizes"]:
        eager, mapped = row["eager"], row["mmap"]
        table.add_row(
            [
                row["n"],
                f"{row['file_bytes'] / 1e6:.1f}",
                f"{eager['open_seconds'] * 1e3:.1f}",
                f"{mapped['open_seconds'] * 1e3:.1f}",
                f"{eager['rss_delta_kb'] / 1024:.1f}",
                f"{mapped['rss_delta_kb'] / 1024:.1f}",
                f"{mapped['first_query_seconds'] * 1e3:.1f}",
                f"{mapped['warm_query_seconds'] * 1e3:.2f}",
                str(row["identical"]),
            ]
        )
    return [table]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-scale CI version (writes BENCH_mmap.smoke.json)",
    )
    args = parser.parse_args()
    workload = SMOKE if args.smoke else FULL
    report = run_report(workload, check_sharded=True)
    name = "BENCH_mmap.smoke.json" if args.smoke else "BENCH_mmap.json"
    out_path = Path(__file__).parent / "results" / name
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    _print_summary(report)
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main()
