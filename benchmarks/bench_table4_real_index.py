"""Table 4: hash-function counts and index sizes for the real datasets.

The paper materialises eta_0.5 functions (c = 3) for Inria (d=128), SUN
(d=512), LabelMe (d=512) and Mnist (d=784) and reports eta shrinking as
dimensionality grows.  Cardinalities here are the bench-scale ones; the
table also projects the size at the paper's full cardinality from the
same eta, which lands near the paper's reported MB.
"""

from bench_common import BENCH_CARDINALITY, lazy_index, print_tables
from repro.datasets.simulated import dataset_spec
from repro.eval.harness import ResultTable
from repro.storage.pages import PageLayout

#: Paper-reported (eta_0.5, index MB) per dataset for reference.
PAPER = {
    "inria": (1358, 23824),
    "sun": (916, 1100),
    "labelme": (959, 2061),
    "mnist": (845, 498),
}

DATASETS = ("inria", "sun", "labelme", "mnist")


def run() -> list[ResultTable]:
    table = ResultTable(
        "Table 4: real-dataset index sizes (c=3, p_min=0.5)",
        [
            "dataset",
            "d",
            "n (bench)",
            "eta_0.5",
            "paper eta",
            "size MB (bench)",
            "size MB @ paper n",
            "paper MB",
        ],
    )
    layout = PageLayout()
    for name in DATASETS:
        spec = dataset_spec(name)
        index = lazy_index(name)
        projected = index.eta * layout.size_bytes(spec.paper_n) / (1024.0**2)
        table.add_row(
            [
                name,
                spec.d,
                BENCH_CARDINALITY[name],
                index.eta,
                PAPER[name][0],
                round(index.index_size_mb(), 1),
                round(projected),
                PAPER[name][1],
            ]
        )
    return [table]


def test_table4_real_index(benchmark, capsys):
    tables = benchmark.pedantic(run, rounds=1, iterations=1)
    print_tables(capsys, tables)
    rows = {row[0]: row for row in tables[0].rows}
    # eta decreases with dimensionality (inria > sun/labelme > mnist).
    assert rows["inria"][3] > rows["sun"][3] > rows["mnist"][3]
    # Within 2x of the paper's eta despite Monte-Carlo differences.
    for name in DATASETS:
        measured, paper_eta = rows[name][3], rows[name][4]
        assert 0.5 < measured / paper_eta < 2.0


if __name__ == "__main__":
    for table in run():
        print(table.render())
        print()
