"""Figure 13: query-centric versus original (aligned) rehashing.

Same index data, same parameters, l1 queries, k = 100 — only the window
placement differs.  The paper reports the query-centric windows (centred
on the query's own bucket, Eq. 21) achieving a better overall ratio than
C2LSH's aligned virtual rehashing (Eq. 7), which can leave the query at
the very edge of its window (Figure 8).
"""

import numpy as np

from bench_common import dataset_split, ground_truth, lazy_index, print_tables
from repro.eval import overall_ratio
from repro.eval.harness import ResultTable

DATASETS = ("inria", "sun", "labelme", "mnist")
K = 100
P = 1.0


def _avg_ratio(index, name: str) -> float:
    split = dataset_split(name)
    _, true_dists = ground_truth(name, K, P)
    ratios = []
    for qi, query in enumerate(split.queries):
        result = index.knn(query, K, P)
        ratios.append(overall_ratio(result.distances, true_dists[qi]))
    return float(np.mean(ratios))


def run() -> list[ResultTable]:
    table = ResultTable(
        f"Figure 13: rehashing ablation, l{P:g}, k={K}",
        ["dataset", "query-centric", "original"],
    )
    for name in DATASETS:
        centric = _avg_ratio(lazy_index(name), name)
        original = _avg_ratio(lazy_index(name, rehashing="original"), name)
        table.add_row([name, round(centric, 4), round(original, 4)])
    return [table]


def test_fig13_rehashing(benchmark, capsys):
    tables = benchmark.pedantic(run, rounds=1, iterations=1)
    print_tables(capsys, tables)
    centric = [row[1] for row in tables[0].rows]
    original = [row[2] for row in tables[0].rows]
    # Query-centric rehashing is at least as accurate on average, and
    # never meaningfully worse on any dataset.
    assert np.mean(centric) <= np.mean(original) + 1e-9
    assert all(c <= o + 0.02 for c, o in zip(centric, original))


if __name__ == "__main__":
    for table in run():
        print(table.render())
        print()
