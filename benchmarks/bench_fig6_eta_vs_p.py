"""Figure 6: required hash functions eta_p across lp spaces.

Setting: d = 128, c = 2, epsilon = 0.01, beta = 1e-4.  eta is inversely
proportional to the squared sensitivity gap, so it explodes as p
approaches the support boundary (~12,000 at p = 0.5 in the paper) and
bottoms out near the base space.  The dashed-line observation: the bank
materialised for one p also serves every p with a smaller eta — e.g.
eta_0.6 covers 0.6 <= p <= ~1.1.
"""

import numpy as np

from bench_common import MC_BUCKETS, MC_SAMPLES, print_tables
from repro.core.params import ParameterEngine
from repro.errors import UnsupportedMetricError
from repro.eval.harness import ResultTable

D = 128
C = 2.0


def run() -> list[ResultTable]:
    engine = ParameterEngine(
        D, c=C, epsilon=0.01, beta=1e-4, mc_samples=MC_SAMPLES,
        mc_buckets=MC_BUCKETS, seed=7,
    )
    table = ResultTable(
        f"Figure 6: eta_p vs lp space (d={D}, c={C:g}, eps=0.01, beta=1e-4)",
        ["p", "eta_p", "theta_p"],
    )
    etas = {}
    for p in np.round(np.arange(0.5, 1.15, 0.05), 2):
        try:
            params = engine.metric_params(float(p))
        except UnsupportedMetricError:
            table.add_row([float(p), "-", "-"])
            continue
        etas[float(p)] = params.eta
        table.add_row([float(p), params.eta, round(params.theta, 1)])
    summary = ResultTable("Figure 6 landmarks", ["landmark", "value"])
    summary.add_row(["eta_0.5 (paper ~12k-13k)", etas.get(0.5)])
    summary.add_row(["eta_1.0 (paper <1k)", etas.get(1.0)])
    summary.add_row(
        ["upper p served by the eta_0.6 bank (paper ~1.1)",
         engine.supported_upper_p(etas[0.6])],
    )
    return [table, summary]


def test_fig6_eta_vs_p(benchmark, capsys):
    tables = benchmark.pedantic(run, rounds=1, iterations=1)
    print_tables(capsys, tables)
    landmarks = {row[0]: row[1] for row in tables[1].rows}
    assert 8_000 < landmarks["eta_0.5 (paper ~12k-13k)"] < 16_000
    assert landmarks["eta_1.0 (paper <1k)"] < 1_000
    assert landmarks["upper p served by the eta_0.6 bank (paper ~1.1)"] >= 1.0
    # eta decreases monotonically from p=0.5 towards the base space.
    etas = [row[1] for row in tables[0].rows if row[1] != "-" and row[0] <= 1.0]
    assert all(a >= b for a, b in zip(etas, etas[1:]))


if __name__ == "__main__":
    for table in run():
        print(table.render())
        print()
