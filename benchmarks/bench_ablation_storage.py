"""Ablation: the storage argument of Sections 1 and 6.2.

The paper's motivation for single-index methods: E2LSH needs a fresh set
of compound tables *per search radius* (its index grows as queries reach
farther), and the strawman "one dedicated index per metric" multiplies
everything by the number of metrics.  LazyLSH pays one eta_{p_min} bank.

This bench builds all three arrangements over the same data and compares
simulated storage:

* LazyLSH: one bank serving all six metrics,
* per-metric C2LSH-style banks (the strawman; each metric would also
  need its own p-stable family, which does not even exist in closed
  form for fractional p — the sizes here use the l1 family as a stand-in),
* E2LSH: levels materialised on demand while answering the query set.
"""

from bench_common import MC_BUCKETS, MC_SAMPLES, P_SWEEP, print_tables
from repro import LazyLSH, LazyLSHConfig
from repro.baselines import E2LSH
from repro.baselines.e2lsh import E2LSHConfig
from repro.core.params import ParameterEngine
from repro.datasets import make_synthetic, sample_queries
from repro.eval.harness import ResultTable
from repro.storage.pages import PageLayout

N = 3000
D = 128
K = 20


def run() -> list[ResultTable]:
    data = make_synthetic(N, D, value_range=(0, 255), seed=3)
    split = sample_queries(data, n_queries=3, seed=4)
    cfg = LazyLSHConfig(
        c=3.0, p_min=0.5, seed=7, mc_samples=MC_SAMPLES, mc_buckets=MC_BUCKETS
    )
    lazy = LazyLSH(cfg).build(split.data)

    # Strawman: one dedicated bank per metric, each sized like a C2LSH
    # bank for that metric's sensitivity.
    engine = ParameterEngine(
        D, c=3.0, epsilon=0.01, beta=lazy.beta,
        mc_samples=MC_SAMPLES, mc_buckets=MC_BUCKETS, seed=7,
    )
    layout = PageLayout()
    per_metric_mb = 0.0
    for p in P_SWEEP:
        eta = engine.metric_params(p).eta
        per_metric_mb += eta * layout.size_bytes(split.data.shape[0]) / 1024**2

    # E2LSH: build levels by answering the query set.
    e2 = E2LSH(E2LSHConfig(c=2.0, seed=7)).build(split.data)
    for query in split.queries:
        e2.knn(query, K)

    table = ResultTable(
        f"Storage ablation (|D|={N}, d={D}, six metrics)",
        ["arrangement", "size (MB)", "vs LazyLSH"],
    )
    lazy_mb = lazy.index_size_mb()
    table.add_row(["LazyLSH single bank (serves all 6)", round(lazy_mb, 1), 1.0])
    table.add_row(
        [
            "one dedicated bank per metric",
            round(per_metric_mb, 1),
            round(per_metric_mb / lazy_mb, 2),
        ]
    )
    e2_mb = e2.index_size_mb()
    table.add_row(
        [
            f"E2LSH ({e2.num_levels} radius levels materialised)",
            round(e2_mb, 1),
            round(e2_mb / lazy_mb, 2),
        ]
    )
    return [table]


def test_ablation_storage(benchmark, capsys):
    tables = benchmark.pedantic(run, rounds=1, iterations=1)
    print_tables(capsys, tables)
    rows = tables[0].rows
    lazy_mb = rows[0][1]
    per_metric_mb = rows[1][1]
    # The strawman costs a multiple of the single LazyLSH bank (paper:
    # supporting [0.5, 1] costs 2.37x the l1-only bank; six dedicated
    # banks cost far more than that one shared bank).
    assert per_metric_mb > 2.0 * lazy_mb


if __name__ == "__main__":
    for table in run():
        print(table.render())
        print()
