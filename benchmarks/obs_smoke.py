"""Distributed ops-plane smoke: scrape + audit a live 2-shard service.

CI gate for the observability plane (DESIGN §10).  The script

1. builds a planted-neighbour workload (64 queries, each with 12 points
   planted within noise distance of its anchor, filler far away) where
   a ``c``-approximate method genuinely can reach high exact recall —
   near-equidistant workloads make top-k membership a coin flip and
   would gate on noise instead of regressions;
2. starts a 2-shard :class:`~repro.serve.ShardedSearchService` with a
   service-level :class:`~repro.obs.Telemetry`, a 100%-sampled
   :class:`~repro.obs.GuaranteeAuditor` and a capture-all
   :class:`~repro.obs.SlowQueryLog`, all exported by a live
   :class:`~repro.obs.ObsExporter`;
3. scrapes ``/metrics`` and ``/healthz`` concurrently *while the wave
   is in flight* (a background scraper thread polls throughout);
4. measures telemetry overhead as min-of-N wall time with the ops
   plane off vs on over the same worker fleet.

Hard gates (non-zero exit):

* audited recall@10 >= 0.9 and rolling success rate >= the 1/2 - beta
  bound;
* every in-flight scrape returned HTTP 200 and a parseable exposition;
* telemetry overhead <= 3%.

Artifacts: ``benchmarks/results/obs_smoke.report.json``,
``obs_smoke.metrics.txt`` and ``obs_smoke.slowlog.json``.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np

from repro.core.config import LazyLSHConfig
from repro.core.lazylsh import LazyLSH
from repro.obs import (
    GuaranteeAuditor,
    ObsExporter,
    SlowQueryLog,
    Telemetry,
    parse_prometheus_text,
)
from repro.serve import ShardedSearchService
from repro.serve.bench import _measure_telemetry_overhead

SEED = 7
N, D, N_QUERIES, K, P = 4000, 16, 64, 10, 0.75
PLANTED_PER_QUERY = 12
N_SHARDS = 2

MIN_RECALL = 0.9
MAX_OVERHEAD = 0.03

RESULTS = Path(__file__).parent / "results"


def make_planted_workload(
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Dataset + queries where each query has a clear true top-k."""
    anchors = rng.normal(scale=20.0, size=(N_QUERIES, D))
    planted = np.repeat(anchors, PLANTED_PER_QUERY, axis=0) + rng.normal(
        scale=0.05, size=(N_QUERIES * PLANTED_PER_QUERY, D)
    )
    filler = rng.normal(
        scale=20.0, size=(N - N_QUERIES * PLANTED_PER_QUERY, D)
    )
    data = np.concatenate([planted, filler])[rng.permutation(N)]
    queries = anchors + rng.normal(scale=0.05, size=(N_QUERIES, D))
    return data, queries


class Scraper(threading.Thread):
    """Polls /metrics + /healthz while the wave runs."""

    def __init__(self, url: str) -> None:
        super().__init__(name="obs-smoke-scraper", daemon=True)
        self.url = url
        self.stop_event = threading.Event()
        self.scrapes = 0
        self.failures: list[str] = []

    def run(self) -> None:
        while not self.stop_event.is_set():
            try:
                with urllib.request.urlopen(
                    self.url + "/metrics", timeout=5
                ) as fh:
                    status, text = fh.status, fh.read().decode()
                if status != 200:
                    raise RuntimeError(f"/metrics returned {status}")
                parse_prometheus_text(text)  # must be strictly parseable
                with urllib.request.urlopen(
                    self.url + "/healthz", timeout=5
                ) as fh:
                    if fh.status != 200:
                        raise RuntimeError(f"/healthz returned {fh.status}")
                    json.loads(fh.read().decode())
                self.scrapes += 1
            except Exception as exc:  # noqa: BLE001 - report, don't die
                self.failures.append(repr(exc))
            self.stop_event.wait(0.02)


def main() -> int:
    rng = np.random.default_rng(SEED)
    data, queries = make_planted_workload(rng)
    cfg = LazyLSHConfig(
        c=3.0, p_min=0.5, seed=SEED, mc_samples=50_000, mc_buckets=150
    )
    index = LazyLSH(cfg).build(data)

    slowlog = SlowQueryLog(capacity=N_QUERIES)  # capture-all
    telemetry = Telemetry(capture_traces=False, slowlog=slowlog)
    auditor = GuaranteeAuditor(
        index,
        registry=telemetry.registry,
        sample_rate=1.0,
        window=N_QUERIES,
        queue_size=2 * N_QUERIES,
    )
    with ShardedSearchService(
        index, n_shards=N_SHARDS, telemetry=telemetry, auditor=auditor
    ) as service:
        exporter = ObsExporter(
            telemetry.registry, health=service.health, slowlog=slowlog
        ).start()
        scraper = Scraper(exporter.url)
        scraper.start()
        try:
            t0 = time.perf_counter()
            service.search_batch(queries, K, p=P)
            wave_seconds = time.perf_counter() - t0
            auditor.drain(timeout=120.0)
            # Final scrape after drain so the written artifact carries
            # the audit gauges (in-flight scrapes already checked 200s).
            with urllib.request.urlopen(
                exporter.url + "/metrics", timeout=5
            ) as fh:
                metrics_text = fh.read().decode()
            with urllib.request.urlopen(
                exporter.url + "/slowlog", timeout=5
            ) as fh:
                slowlog_json = fh.read().decode()
        finally:
            scraper.stop_event.set()
            scraper.join(timeout=10.0)
            exporter.stop()
            auditor.close()
        health = service.health()

    audit = auditor.summary()
    overhead = _measure_telemetry_overhead(
        index, queries, K, P, n_shards=N_SHARDS, start_method=None
    )

    samples = parse_prometheus_text(metrics_text)
    shard_series = sorted(
        labels["shard"]
        for labels, _v in samples.get("lazylsh_shard_rows_scanned_total", [])
    )

    checks = {
        "recall_ok": audit["recall_at_k"] is not None
        and audit["recall_at_k"] >= MIN_RECALL,
        "success_rate_ok": audit["success_rate"] is not None
        and audit["success_rate"] >= audit["bound"],
        "all_queries_audited": audit["samples"] == N_QUERIES,
        "scrapes_in_flight": scraper.scrapes > 0
        and not scraper.failures,
        "healthy": bool(health["healthy"]),
        "all_shards_labeled": shard_series
        == [str(s) for s in range(N_SHARDS)],
        "slowlog_captured": len(json.loads(slowlog_json)) == N_QUERIES,
        "overhead_ok": overhead["overhead_fraction"] is not None
        and overhead["overhead_fraction"] <= MAX_OVERHEAD,
        "overhead_scrape_ok": bool(overhead["scrape_ok"]),
    }
    report = {
        "bench": "obs_smoke",
        "workload": {
            "n": N,
            "d": D,
            "n_queries": N_QUERIES,
            "k": K,
            "p": P,
            "planted_per_query": PLANTED_PER_QUERY,
            "seed": SEED,
        },
        "n_shards": N_SHARDS,
        "wave_seconds": wave_seconds,
        "audit": audit,
        "scraper": {
            "scrapes": scraper.scrapes,
            "failures": scraper.failures,
        },
        "health": health,
        "telemetry_overhead": overhead,
        "thresholds": {
            "min_recall_at_k": MIN_RECALL,
            "max_overhead_fraction": MAX_OVERHEAD,
        },
        "checks": checks,
    }

    RESULTS.mkdir(parents=True, exist_ok=True)
    (RESULTS / "obs_smoke.report.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    (RESULTS / "obs_smoke.metrics.txt").write_text(metrics_text)
    (RESULTS / "obs_smoke.slowlog.json").write_text(slowlog_json)
    print(json.dumps(report, indent=2))

    failed = [name for name, ok in checks.items() if not ok]
    if failed:
        print(f"obs smoke FAILED: {failed}")
        return 1
    print(
        f"obs smoke ok: recall@{K}={audit['recall_at_k']:.3f} "
        f"success={audit['success_rate']:.3f} (bound {audit['bound']:.3f}), "
        f"{scraper.scrapes} in-flight scrapes, "
        f"overhead={overhead['overhead_fraction']:.2%}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
