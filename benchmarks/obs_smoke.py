"""Distributed ops-plane smoke: scrape + audit a live 2-shard service.

CI gate for the observability plane (DESIGN §10).  The script

1. builds a planted-neighbour workload (64 queries, each with 12 points
   planted within noise distance of its anchor, filler far away) where
   a ``c``-approximate method genuinely can reach high exact recall —
   near-equidistant workloads make top-k membership a coin flip and
   would gate on noise instead of regressions;
2. starts a 2-shard :class:`~repro.serve.ShardedSearchService` with a
   service-level :class:`~repro.obs.Telemetry`, a 100%-sampled
   :class:`~repro.obs.GuaranteeAuditor` and a capture-all
   :class:`~repro.obs.SlowQueryLog`, all exported by a live
   :class:`~repro.obs.ObsExporter`;
3. scrapes ``/metrics`` and ``/healthz`` concurrently *while the wave
   is in flight* (a background scraper thread polls throughout);
4. runs one explicitly traced request with a tiny ``deadline_ms``: the
   resulting cross-process trace tree (coordinator root, per-shard
   ``worker.round`` children, merge span) is schema-validated, fetched
   back over ``/trace/<id>`` and round-tripped through the JSONL
   export, while the deadline overrun trips a flight-recorder dump;
5. plants an SLO violation (80% error burst against a 99% objective on
   a fake clock) and asserts the burn-rate engine raises exactly one
   alert episode for the whole burst;
6. exercises the workload intelligence plane (DESIGN §15): repeats one
   query to plant a heavy hitter, runs an EXPLAIN wave, and captures a
   flamegraph from the live ``/profile`` endpoint while the continuous
   sampler runs;
7. measures telemetry overhead as CPU seconds (coordinator +
   workers) with the ops plane off vs on over the same worker fleet —
   once for the classic ops plane, once with the full intelligence
   plane (profiler + EXPLAIN + workload sketches) armed — alongside a
   bare-vs-bare placebo that calibrates the host's noise floor.

Hard gates (non-zero exit):

* audited recall@10 >= 0.9 and rolling success rate >= the 1/2 - beta
  bound;
* every in-flight scrape returned HTTP 200 and a parseable exposition;
* one reconstructable trace tree covering both shards, served over
  ``/trace/<id>`` and identical after the JSONL round trip;
* a flight-recorder bundle dumped for the deadline overrun;
* exactly one SLO alert episode for the planted violation;
* ``/profile`` serves non-empty folded-stack text with phase
  attribution and coherent ``X-Profile-Stats``;
* every EXPLAIN record is schema-valid and its per-round I/O deltas
  sum to the query's ``IOStats`` totals;
* the heavy-hitter table names the planted query's digest AND its
  base bucket (verified against ``hash_points`` independently);
* slowlog entries carry ``request_id``/``trace_id``, linking the
  traced probe to ``/trace/<id>``;
* telemetry overhead <= 3%, with AND without the intelligence plane
  (readings are discarded as unresolvable when the placebo shows the
  host cannot currently measure a 3% difference between identical
  workloads).

Artifacts: ``benchmarks/results/obs_smoke.report.json``,
``obs_smoke.metrics.txt``, ``obs_smoke.slowlog.json``,
``obs_smoke.profile.folded`` and ``obs_smoke.traces.jsonl``.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np

from repro.core.config import LazyLSHConfig
from repro.core.lazylsh import LazyLSH
from repro.obs import (
    BurnWindow,
    ContinuousProfiler,
    FlightRecorder,
    GuaranteeAuditor,
    MetricsRegistry,
    ObsExporter,
    SLOEngine,
    SLOSpec,
    SlowQueryLog,
    Telemetry,
    TraceContext,
    TraceStore,
    WorkloadAnalytics,
    build_trace_tree,
    parse_prometheus_text,
    validate_explain_dict,
    validate_span_dict,
)
from repro.serve import ShardedSearchService
from repro.serve.bench import _measure_telemetry_overhead

SEED = 7
N, D, N_QUERIES, K, P = 4000, 16, 64, 10, 0.75
PLANTED_PER_QUERY = 12
N_SHARDS = 2
#: Extra repeats of query 0 that plant the heavy hitter.
HOT_REPEATS = 8
#: Queries in the EXPLAIN wave.
N_EXPLAIN = 4

MIN_RECALL = 0.9
MAX_OVERHEAD = 0.03

RESULTS = Path(__file__).parent / "results"


def _overhead_gate(measurement: dict) -> bool:
    """Noise-aware overhead gate.

    Passes when the measured overhead fits the budget.  When it does
    not, the measurement's bare-vs-bare placebo decides whether the
    reading means anything: if the estimator reports more apparent
    "overhead" than the budget for two *identical* workloads, this
    host cannot currently resolve the gate and the reading is noise,
    not a regression.  On a quiet host the placebo sits near zero and
    the gate is a hard ceiling.
    """
    overhead = measurement.get("overhead_fraction")
    placebo = measurement.get("placebo_fraction")
    if overhead is None or placebo is None:
        return False
    return overhead <= MAX_OVERHEAD or abs(placebo) > MAX_OVERHEAD


def make_planted_workload(
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Dataset + queries where each query has a clear true top-k."""
    anchors = rng.normal(scale=20.0, size=(N_QUERIES, D))
    planted = np.repeat(anchors, PLANTED_PER_QUERY, axis=0) + rng.normal(
        scale=0.05, size=(N_QUERIES * PLANTED_PER_QUERY, D)
    )
    filler = rng.normal(
        scale=20.0, size=(N - N_QUERIES * PLANTED_PER_QUERY, D)
    )
    data = np.concatenate([planted, filler])[rng.permutation(N)]
    queries = anchors + rng.normal(scale=0.05, size=(N_QUERIES, D))
    return data, queries


class Scraper(threading.Thread):
    """Polls /metrics + /healthz while the wave runs."""

    def __init__(self, url: str) -> None:
        super().__init__(name="obs-smoke-scraper", daemon=True)
        self.url = url
        self.stop_event = threading.Event()
        self.scrapes = 0
        self.failures: list[str] = []

    def run(self) -> None:
        while not self.stop_event.is_set():
            try:
                with urllib.request.urlopen(
                    self.url + "/metrics", timeout=5
                ) as fh:
                    status, text = fh.status, fh.read().decode()
                if status != 200:
                    raise RuntimeError(f"/metrics returned {status}")
                parse_prometheus_text(text)  # must be strictly parseable
                with urllib.request.urlopen(
                    self.url + "/healthz", timeout=5
                ) as fh:
                    if fh.status != 200:
                        raise RuntimeError(f"/healthz returned {fh.status}")
                    json.loads(fh.read().decode())
                self.scrapes += 1
            except Exception as exc:  # noqa: BLE001 - report, don't die
                self.failures.append(repr(exc))
            self.stop_event.wait(0.02)


def run_slo_violation_smoke() -> dict:
    """Planted 80% error burst -> exactly one burn-rate alert episode.

    Runs on a fake clock so the multi-minute windows evaluate
    instantly; mirrors the default fast (5m/1h, 14.4x) window.
    """
    clock = {"now": 1000.0}
    registry = MetricsRegistry()
    engine = SLOEngine(registry, clock=lambda: clock["now"])
    state = {"good": 0.0, "total": 0.0}
    engine.add(SLOSpec(
        "smoke_availability",
        objective=0.99,
        sli=lambda: (state["good"], state["total"]),
        windows=(BurnWindow("fast", 300.0, 3600.0, 14.4),),
    ))
    # Healthy baseline, then a sustained 80%-error burst.
    state.update(good=500.0, total=500.0)
    engine.tick()
    ticks_alerting = 0
    for _ in range(5):
        clock["now"] += 60.0
        state["total"] += 100.0
        state["good"] += 20.0
        report = engine.tick()
        ticks_alerting += bool(report["alerting"])
    episodes = registry.get("lazylsh_slo_alerts_total").value(
        slo="smoke_availability"
    )
    return {
        "alert_episodes": episodes,
        "ticks_alerting": ticks_alerting,
        "final_report": report,
        "single_episode": episodes == 1 and ticks_alerting == 5,
    }


def main() -> int:
    rng = np.random.default_rng(SEED)
    data, queries = make_planted_workload(rng)
    cfg = LazyLSHConfig(
        c=3.0, p_min=0.5, seed=SEED, mc_samples=50_000, mc_buckets=150
    )
    index = LazyLSH(cfg).build(data)

    slowlog = SlowQueryLog(capacity=N_QUERIES)  # capture-all
    trace_store = TraceStore(capacity=16)
    telemetry = Telemetry(
        capture_traces=False, slowlog=slowlog, trace_store=trace_store
    )
    flight = FlightRecorder(
        registry=telemetry.registry,
        trace_store=trace_store,
        slowlog=slowlog,
        min_interval_seconds=5.0,
    )
    telemetry.flight_recorder = flight
    workload = WorkloadAnalytics(registry=telemetry.registry)
    telemetry.workload = workload
    profiler = ContinuousProfiler(registry=telemetry.registry)
    auditor = GuaranteeAuditor(
        index,
        registry=telemetry.registry,
        sample_rate=1.0,
        window=N_QUERIES,
        queue_size=2 * N_QUERIES,
        flight_recorder=flight,
    )
    with ShardedSearchService(
        index, n_shards=N_SHARDS, telemetry=telemetry, auditor=auditor
    ) as service:
        flight.health = service.health
        exporter = ObsExporter(
            telemetry.registry,
            health=service.health,
            slowlog=slowlog,
            trace_store=trace_store,
            profiler=profiler,
        ).start()
        scraper = Scraper(exporter.url)
        scraper.start()
        profiler.start()
        try:
            t0 = time.perf_counter()
            service.search_batch(queries, K, p=P)
            wave_seconds = time.perf_counter() - t0
            # One explicitly traced request with an impossible deadline:
            # yields the cross-process trace tree AND a deadline-overrun
            # flight dump in a single wave.
            ctx = TraceContext.new()
            traced = service.search_batch(
                queries[:1], K, p=P, trace_context=ctx, deadline_ms=1e-6
            )
            # Plant a heavy hitter: query 0 repeated HOT_REPEATS times.
            service.search_batch(
                np.repeat(queries[:1], HOT_REPEATS, axis=0), K, p=P
            )
            # EXPLAIN wave: every result must carry a schema-valid plan.
            explained = service.search_batch(
                queries[:N_EXPLAIN], K, p=P, explain=True
            )
            auditor.drain(timeout=120.0)
            # Final scrape after drain so the written artifact carries
            # the audit gauges (in-flight scrapes already checked 200s).
            with urllib.request.urlopen(
                exporter.url + "/metrics", timeout=5
            ) as fh:
                metrics_text = fh.read().decode()
            with urllib.request.urlopen(
                exporter.url + "/slowlog", timeout=5
            ) as fh:
                slowlog_json = fh.read().decode()
            with urllib.request.urlopen(
                f"{exporter.url}/trace/{ctx.trace_id}", timeout=5
            ) as fh:
                served_tree = json.loads(fh.read().decode())
            # Flamegraph capture from the live endpoint while the
            # continuous sampler has been running across the waves.
            with urllib.request.urlopen(
                exporter.url + "/profile", timeout=5
            ) as fh:
                profile_status = fh.status
                profile_stats_header = fh.headers.get("X-Profile-Stats")
                profile_text = fh.read().decode()
        finally:
            profiler.stop()
            scraper.stop_event.set()
            scraper.join(timeout=10.0)
            exporter.stop()
            auditor.close()
        health = service.health()

    audit = auditor.summary()

    # -- trace tree: validate, reconstruct, JSONL round trip ------------
    spans = trace_store.get(ctx.trace_id) or []
    for record in spans:
        validate_span_dict(record)
    tree = build_trace_tree(spans)
    roots = tree["roots"]
    root = roots[0] if roots else {"name": None, "children": []}
    worker_shards = sorted(
        child["attributes"].get("shard")
        for child in root["children"]
        if child["name"] == "worker.round"
    )
    RESULTS.mkdir(parents=True, exist_ok=True)
    jsonl_path = trace_store.export_jsonl(RESULTS / "obs_smoke.traces.jsonl")
    reloaded = [
        json.loads(line)
        for line in jsonl_path.read_text().splitlines()
        if json.loads(line)["trace_id"] == ctx.trace_id
    ]
    reloaded_tree = build_trace_tree(reloaded)
    trace_smoke = {
        "trace_id": ctx.trace_id,
        "span_count": tree["span_count"],
        "root": root["name"],
        "worker_shards": worker_shards,
        "deadline_exceeded": bool(traced[0].deadline_exceeded),
        "served_span_count": served_tree.get("span_count"),
        "jsonl_span_count": reloaded_tree["span_count"],
    }

    slo_smoke = run_slo_violation_smoke()
    flight_reasons = [bundle["reason"] for bundle in flight.bundles]

    # -- workload intelligence: profile, EXPLAIN, heavy hitters ---------
    profile_lines = [
        line for line in profile_text.splitlines() if line.strip()
    ]
    profile_parsed = []
    for line in profile_lines:
        stack, _, count = line.rpartition(" ")
        profile_parsed.append((stack, count.isdigit() and int(count) > 0))
    profile_stats = (
        json.loads(profile_stats_header) if profile_stats_header else {}
    )
    profile_smoke = {
        "status": profile_status,
        "lines": len(profile_lines),
        "stats": profile_stats,
        "top_stacks": [line for line in profile_lines[:5]],
    }

    explain_checks = []
    for result in explained:
        record = result.explain
        ok = record is not None
        if ok:
            try:
                validate_explain_dict(record)
            except Exception:  # noqa: BLE001 - gate, don't die
                ok = False
        if ok:
            seq = sum(r["io"]["sequential"] for r in record["rounds"])
            rnd = sum(r["io"]["random"] for r in record["rounds"])
            ok = (
                seq == result.io.sequential
                and rnd == result.io.random
                and record["shards"] is not None
                and record["shards"]["count"] == N_SHARDS
            )
        explain_checks.append(bool(ok))

    hot_query = np.ascontiguousarray(queries[0], dtype=np.float64)
    expected_digest = hashlib.sha1(hot_query.tobytes()).hexdigest()
    expected_bucket = [
        int(x) for x in index._bank.hash_points(hot_query[None, :])[:, 0]
    ]
    hitters = workload.heavy_hitters(n=3)
    top_digest = hitters["digests"][0] if hitters["digests"] else {}
    top_bucket = hitters["buckets"][0] if hitters["buckets"] else {}
    workload_smoke = {
        "top_digest": top_digest.get("digest"),
        "top_digest_count": top_digest.get("count"),
        "top_bucket_count": top_bucket.get("count"),
        "bucket_matches_hash_points": top_bucket.get("bucket")
        == expected_bucket,
        "demand": workload.demand(),
        "error_bound": hitters["error_bound"],
    }

    slowlog_entries = json.loads(slowlog_json)
    traced_entries = [
        e for e in slowlog_entries if e.get("trace_id") == ctx.trace_id
    ]

    # Deeper min-of-N than the default 5: both marginals are ~1% so the
    # estimate has to sit below multi-percent host noise.
    overhead = _measure_telemetry_overhead(
        index, queries, K, P, n_shards=N_SHARDS, start_method=None,
        repeats=10,
    )
    workload_overhead = _measure_telemetry_overhead(
        index, queries, K, P, n_shards=N_SHARDS, start_method=None,
        intelligence=True, repeats=10,
    )

    samples = parse_prometheus_text(metrics_text)
    shard_series = sorted(
        labels["shard"]
        for labels, _v in samples.get("lazylsh_shard_rows_scanned_total", [])
    )

    checks = {
        "recall_ok": audit["recall_at_k"] is not None
        and audit["recall_at_k"] >= MIN_RECALL,
        "success_rate_ok": audit["success_rate"] is not None
        and audit["success_rate"] >= audit["bound"],
        # The main wave, the traced deadline probe, the heavy-hitter
        # repeats and the EXPLAIN wave are all audited at rate 1.0.
        "all_queries_audited": audit["samples"]
        == N_QUERIES + 1 + HOT_REPEATS + N_EXPLAIN,
        "scrapes_in_flight": scraper.scrapes > 0
        and not scraper.failures,
        "healthy": bool(health["healthy"]),
        "all_shards_labeled": shard_series
        == [str(s) for s in range(N_SHARDS)],
        "slowlog_captured": len(json.loads(slowlog_json)) == N_QUERIES,
        "trace_tree_ok": len(roots) == 1
        and root["name"] == "serve.search_batch"
        and tree["trace_id"] == ctx.trace_id
        and worker_shards == list(range(N_SHARDS))
        and "serve.merge" in {c["name"] for c in root["children"]},
        "trace_endpoint_ok": served_tree.get("span_count")
        == tree["span_count"]
        and tree["span_count"] > 0,
        "trace_jsonl_ok": reloaded_tree["span_count"] == tree["span_count"],
        "deadline_flagged": bool(traced[0].deadline_exceeded),
        "flight_dump_ok": "deadline_overrun" in flight_reasons,
        "slo_single_episode": bool(slo_smoke["single_episode"]),
        "profile_ok": profile_status == 200
        and len(profile_parsed) > 0
        and all(ok for _stack, ok in profile_parsed)
        and any("phase:" in stack for stack, _ok in profile_parsed)
        and profile_stats.get("samples", 0) > 0,
        "explain_ok": len(explain_checks) == N_EXPLAIN
        and all(explain_checks),
        "heavy_hitter_ok": top_digest.get("digest") == expected_digest
        and top_digest.get("count", 0) > HOT_REPEATS
        and top_bucket.get("bucket") == expected_bucket
        and top_bucket.get("count", 0) > HOT_REPEATS,
        "slowlog_ids_ok": len(slowlog_entries) > 0
        and all(
            "request_id" in e and "trace_id" in e for e in slowlog_entries
        )
        and len(traced_entries) == 1
        and traced_entries[0]["request_id"] is not None,
        "overhead_ok": _overhead_gate(overhead),
        "workload_overhead_ok": _overhead_gate(workload_overhead),
        "overhead_scrape_ok": bool(overhead["scrape_ok"])
        and bool(workload_overhead["scrape_ok"]),
    }
    report = {
        "bench": "obs_smoke",
        "workload": {
            "n": N,
            "d": D,
            "n_queries": N_QUERIES,
            "k": K,
            "p": P,
            "planted_per_query": PLANTED_PER_QUERY,
            "seed": SEED,
        },
        "n_shards": N_SHARDS,
        "wave_seconds": wave_seconds,
        "audit": audit,
        "scraper": {
            "scrapes": scraper.scrapes,
            "failures": scraper.failures,
        },
        "health": health,
        "trace": trace_smoke,
        "slo_smoke": {
            "alert_episodes": slo_smoke["alert_episodes"],
            "ticks_alerting": slo_smoke["ticks_alerting"],
        },
        "flight": {"reasons": flight_reasons, **flight.stats()},
        "profile": profile_smoke,
        "workload": workload_smoke,
        "telemetry_overhead": overhead,
        "intelligence_overhead": workload_overhead,
        "thresholds": {
            "min_recall_at_k": MIN_RECALL,
            "max_overhead_fraction": MAX_OVERHEAD,
        },
        "checks": checks,
    }

    RESULTS.mkdir(parents=True, exist_ok=True)
    (RESULTS / "obs_smoke.report.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    (RESULTS / "obs_smoke.metrics.txt").write_text(metrics_text)
    (RESULTS / "obs_smoke.slowlog.json").write_text(slowlog_json)
    (RESULTS / "obs_smoke.profile.folded").write_text(profile_text)
    print(json.dumps(report, indent=2))

    failed = [name for name, ok in checks.items() if not ok]
    if failed:
        print(f"obs smoke FAILED: {failed}")
        return 1
    print(
        f"obs smoke ok: recall@{K}={audit['recall_at_k']:.3f} "
        f"success={audit['success_rate']:.3f} (bound {audit['bound']:.3f}), "
        f"{scraper.scrapes} in-flight scrapes, "
        f"{profile_stats.get('samples', 0)} profile samples, "
        f"overhead={overhead['overhead_fraction']:.2%} "
        f"(intelligence {workload_overhead['overhead_fraction']:.2%}, "
        f"placebo {workload_overhead['placebo_fraction']:.2%})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
