"""Sharded query service versus the single-process flat engine.

The acceptance workload of the serving layer: a 24-query batch over a
synthetic n=4k, d=16 dataset at k=10, p=0.75, answered by the
single-process ``knn_batch`` path and by :class:`~repro.serve.
ShardedSearchService` at 1, 2 and 4 shards.

The script verifies the merged sharded results are bit-identical to
the flat engine (ids, distances, termination, rounds and simulated
sequential/random I/O), then writes wall-clock, per-shard busy-time
and load-balance-model numbers to
``benchmarks/results/BENCH_serve.json``.

Honesty note: wall-clock speedup from sharding requires one physical
core per worker.  The report records ``host.cpu_count`` next to the
measured wall times and keeps the *modeled* speedup (total shard work
divided by the slowest shard's busy time) separate — measured numbers
are never extrapolated.  See ``repro/serve/bench.py``.

The report also carries a ``telemetry_overhead`` section: interleaved
min-of-N wall times for the same wave with the ops plane off and on
(full per-shard telemetry, slow-query capture, live scraped
``/metrics`` exporter) over one worker fleet — the ≤ 3% overhead
budget is gated in CI by ``benchmarks/obs_smoke.py``.

Run ``--quick`` for a seconds-scale smoke version of the same pipeline
(used by CI; writes ``BENCH_serve.quick.json`` so the checked-in
full-workload numbers are not clobbered).
"""

from __future__ import annotations

import argparse
import json
import platform
from pathlib import Path

from repro.serve import run_serve_benchmark

FULL = {"n": 4000, "d": 16, "n_queries": 64, "k": 10, "p": 0.75}
QUICK = {"n": 1200, "d": 12, "n_queries": 8, "k": 5, "p": 0.75}

SEED = 7


def run(workload: dict, shard_counts: tuple, out_path: Path) -> dict:
    report = run_serve_benchmark(
        **workload, shard_counts=shard_counts, seed=SEED
    )
    report["python"] = platform.python_version()
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="seconds-scale smoke workload (CI)",
    )
    parser.add_argument(
        "--shards",
        default="1,2,4",
        help="comma-separated shard counts to sweep",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="result JSON path (defaults to benchmarks/results/)",
    )
    args = parser.parse_args()
    workload = QUICK if args.quick else FULL
    shard_counts = tuple(
        int(part) for part in args.shards.split(",") if part.strip()
    )
    default_name = "BENCH_serve.quick.json" if args.quick else "BENCH_serve.json"
    out_path = args.out or Path(__file__).parent / "results" / default_name
    report = run(workload, shard_counts, out_path)
    print(json.dumps(report, indent=2))
    broken = [
        cfg["n_shards"]
        for cfg in report["sharded"]
        if not cfg["identity"]["all"]
    ]
    if broken:
        raise SystemExit(
            f"sharded results diverge from the flat engine at "
            f"n_shards={broken}"
        )


if __name__ == "__main__":
    main()
