"""Figure 5: the sensitivity gap (p1' - p2') across lp spaces.

Setting: d = 128, c = 2.  The paper reports the gap peaking at p = 1
(where the base index lives), shrinking as p moves away, and vanishing
below p ~ 0.44 and above p ~ 1.18 — the operational support range of a
single l1 base index.
"""

import numpy as np

from bench_common import MC_BUCKETS, MC_SAMPLES, print_tables
from repro.core.params import ParameterEngine
from repro.errors import UnsupportedMetricError
from repro.eval.harness import ResultTable

D = 128
C = 2.0


def run() -> list[ResultTable]:
    engine = ParameterEngine(
        D, c=C, epsilon=0.01, beta=1e-4, mc_samples=MC_SAMPLES,
        mc_buckets=MC_BUCKETS, seed=7,
    )
    table = ResultTable(
        f"Figure 5: p1'-p2' vs lp space (d={D}, c={C:g})",
        ["p", "p1'", "p2'", "gap", "sensitive"],
    )
    p_grid = np.round(np.arange(0.40, 1.25, 0.05), 2)
    boundary_low = None
    boundary_high = None
    for p in p_grid:
        try:
            params = engine.metric_params(float(p))
        except UnsupportedMetricError:
            table.add_row([float(p), "-", "-", "-", "no"])
            continue
        table.add_row(
            [float(p), params.p1_prime, params.p2_prime, params.gap, "yes"]
        )
        if boundary_low is None:
            boundary_low = float(p)
        boundary_high = float(p)
    summary = ResultTable("Figure 5 landmarks", ["landmark", "value"])
    summary.add_row(["smallest sensitive p (paper ~0.44)", boundary_low])
    summary.add_row(["largest sensitive p (paper ~1.18)", boundary_high])
    return [table, summary]


def test_fig5_gap_vs_p(benchmark, capsys):
    tables = benchmark.pedantic(run, rounds=1, iterations=1)
    print_tables(capsys, tables)
    landmarks = {row[0]: row[1] for row in tables[1].rows}
    assert 0.40 <= landmarks["smallest sensitive p (paper ~0.44)"] <= 0.55
    assert 1.05 <= landmarks["largest sensitive p (paper ~1.18)"] <= 1.25
    # Gap peaks at the base space p = 1.
    gaps = {row[0]: row[3] for row in tables[0].rows if row[4] == "yes"}
    assert max(gaps, key=gaps.get) == 1.0


if __name__ == "__main__":
    for table in run():
        print(table.render())
        print()
