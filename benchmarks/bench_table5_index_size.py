"""Table 5: index size under different parameter settings (synthetic data).

Four sub-tables sweep (a) cardinality, (b) dimensionality, (c) the
approximation ratio c — with I/O and overall ratio measured on live
queries — and (d) the supported lp range.  Cardinalities are scaled 100x
down from the paper (100k-1.6m -> 1k-16k); every trend the paper reports
is checked at this scale:

* (a) eta and size grow with |D| (through beta = 100/|D|),
* (b) eta falls as d grows past ~100 (Figure 7's gap behaviour),
* (c) eta, size and I/O fall with c while the ratio rises,
* (d) supporting smaller p costs progressively more hash functions.
"""

import numpy as np

from bench_common import MC_BUCKETS, MC_SAMPLES, print_tables
from repro import LazyLSH, LazyLSHConfig
from repro.core.params import ParameterEngine
from repro.datasets import exact_knn, make_synthetic, sample_queries
from repro.eval import overall_ratio
from repro.eval.harness import ResultTable
from repro.storage.pages import PageLayout

#: Scaled-down defaults (paper: |D| = 400k, d = 400, c = 3, p >= 0.5).
DEFAULT_N = 4000
DEFAULT_D = 400
DEFAULT_C = 3.0

N_SWEEP = (1000, 2000, 4000, 8000, 16000)
D_SWEEP = (100, 200, 400, 800, 1600)
C_SWEEP = (2.0, 3.0, 4.0, 5.0, 6.0)
P_SWEEP = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def _eta(d: int, c: float, n: int, p_min: float = 0.5) -> int:
    beta = min(max(100.0 / n, 1e-4), 0.5)
    engine = ParameterEngine(
        d, c=c, epsilon=0.01, beta=beta, mc_samples=MC_SAMPLES,
        mc_buckets=MC_BUCKETS, seed=7,
    )
    return engine.metric_params(p_min).eta


def _size_mb(eta: int, n: int) -> float:
    layout = PageLayout()
    return eta * layout.size_bytes(n) / (1024.0 * 1024.0)


def run_5a() -> ResultTable:
    table = ResultTable(
        "Table 5a: index size vs cardinality |D| (d=400, c=3)",
        ["|D|", "eta_0.5", "size (MB)"],
    )
    for n in N_SWEEP:
        eta = _eta(DEFAULT_D, DEFAULT_C, n)
        table.add_row([n, eta, round(_size_mb(eta, n), 1)])
    return table


def run_5b() -> ResultTable:
    table = ResultTable(
        "Table 5b: index size vs dimensionality d (|D|=4k, c=3)",
        ["d", "eta_0.5", "size (MB)"],
    )
    for d in D_SWEEP:
        eta = _eta(d, DEFAULT_C, DEFAULT_N)
        table.add_row([d, eta, round(_size_mb(eta, DEFAULT_N), 1)])
    return table


def run_5c() -> ResultTable:
    table = ResultTable(
        "Table 5c: index size / I/O / ratio vs approximation ratio c "
        "(|D|=4k, d=400, k=100)",
        ["c", "eta_0.5", "size (MB)", "avg I/O", "avg ratio"],
    )
    data = make_synthetic(DEFAULT_N, DEFAULT_D, seed=3)
    split = sample_queries(data, n_queries=4, seed=4)
    true_ids, true_dists = exact_knn(split.data, split.queries, 100, 0.5)
    for c in C_SWEEP:
        cfg = LazyLSHConfig(
            c=c, p_min=0.5, seed=7, mc_samples=MC_SAMPLES, mc_buckets=MC_BUCKETS
        )
        index = LazyLSH(cfg).build(split.data)
        ios, ratios = [], []
        for qi, query in enumerate(split.queries):
            result = index.knn(query, 100, p=0.5)
            ios.append(result.io.total)
            ratios.append(overall_ratio(result.distances, true_dists[qi]))
        table.add_row(
            [
                int(c),
                index.eta,
                round(index.index_size_mb(), 1),
                round(float(np.mean(ios))),
                round(float(np.mean(ratios)), 3),
            ]
        )
    return table


def run_5d() -> ResultTable:
    table = ResultTable(
        "Table 5d: index size vs supported lp range (|D|=4k, d=400, c=3)",
        ["p_min", "eta_{p_min}", "size (MB)"],
    )
    for p in P_SWEEP:
        eta = _eta(DEFAULT_D, DEFAULT_C, DEFAULT_N, p_min=p)
        table.add_row([p, eta, round(_size_mb(eta, DEFAULT_N), 1)])
    return table


def run() -> list[ResultTable]:
    return [run_5a(), run_5b(), run_5c(), run_5d()]


def test_table5_index_size(benchmark, capsys):
    tables = benchmark.pedantic(run, rounds=1, iterations=1)
    print_tables(capsys, tables)
    t5a, t5b, t5c, t5d = tables
    # (a) eta grows with |D|.
    etas_a = [row[1] for row in t5a.rows]
    assert all(a <= b for a, b in zip(etas_a, etas_a[1:]))
    # (b) eta falls with d on this sweep (all d >= 100, past the dip).
    etas_b = [row[1] for row in t5b.rows]
    assert etas_b[0] > etas_b[-1]
    # (c) size and I/O fall with c; ratio rises overall.
    sizes_c = [row[2] for row in t5c.rows]
    ios_c = [row[3] for row in t5c.rows]
    ratios_c = [row[4] for row in t5c.rows]
    assert all(a >= b for a, b in zip(sizes_c, sizes_c[1:]))
    assert ios_c[0] > ios_c[-1]
    assert ratios_c[-1] >= ratios_c[0]
    # (d) supporting smaller p needs more functions.
    etas_d = [row[1] for row in t5d.rows]
    assert all(a >= b for a, b in zip(etas_d, etas_d[1:]))
    # Paper: eta_0.5 is ~2.37x eta_1.0.
    assert 1.5 < etas_d[0] / etas_d[-1] < 4.0


if __name__ == "__main__":
    for table in run():
        print(table.render())
        print()
