"""Figure 4: p1' and p2' versus the radius ratio r/delta_lower.

Setting: l0.5 queries over an l1 base index in R^128, c = 2.  The paper's
figure shows p2' rising smoothly from ~0.15, p1' staying near zero until
ratio ~1.4, jumping sharply, and crossing p2' around ratio ~1.55.
"""

import numpy as np

from bench_common import MC_BUCKETS, MC_SAMPLES, print_tables
from repro.core.params import ParameterEngine
from repro.eval.harness import ResultTable

D = 128
C = 2.0
P = 0.5


def run() -> list[ResultTable]:
    engine = ParameterEngine(
        D, c=C, epsilon=0.01, beta=1e-4, mc_samples=MC_SAMPLES,
        mc_buckets=MC_BUCKETS, seed=7,
    )
    curve = engine.curve(P)
    table = ResultTable(
        f"Figure 4: p1'/p2' vs ratio (l{P:g}, d={D}, c={C:g})",
        ["ratio", "p1'", "p2'", "p1'-p2'"],
    )
    # Sample the curve at the paper's x-axis ticks.
    for target in np.arange(1.0, 2.01, 0.1):
        idx = int(np.argmin(np.abs(curve.ratio - target)))
        table.add_row(
            [
                round(float(curve.ratio[idx]), 2),
                float(curve.p1_prime[idx]),
                float(curve.p2_prime[idx]),
                float(curve.gap[idx]),
            ]
        )
    crossing = curve.ratio[np.argmax(curve.gap > 0)] if np.any(curve.gap > 0) else None
    summary = ResultTable(
        "Figure 4 landmarks",
        ["landmark", "value"],
    )
    summary.add_row(["first ratio with p1' > p2'", float(crossing)])
    summary.add_row(["argmax-gap ratio", float(curve.ratio[np.argmax(curve.gap)])])
    summary.add_row(["max gap", float(curve.gap.max())])
    return [table, summary]


def test_fig4_p1p2_curve(benchmark, capsys):
    tables = benchmark.pedantic(run, rounds=1, iterations=1)
    print_tables(capsys, tables)
    # The paper's qualitative landmarks.
    landmarks = {row[0]: row[1] for row in tables[1].rows}
    assert 1.3 < landmarks["first ratio with p1' > p2'"] < 1.8
    assert landmarks["max gap"] > 0.0


if __name__ == "__main__":
    for table in run():
        print(table.render())
        print()
