"""Figure 11: overall ratio versus k in the l0.5 space.

LazyLSH versus C2LSH (l1 index + lp re-rank) versus SRS (l2 index + lp
re-rank) over the four (simulated) real datasets.  The paper reports
LazyLSH consistently below 1.02 and the single-space baselines worse in
the fractional space — they optimise the wrong metric.

Scale caveat (see EXPERIMENTS.md): at this bench's reduced cardinality
C2LSH's k+100 re-rank pool covers several *percent* of the database
(versus ~0.005% at paper scale), which makes its l1-pool re-rank nearly
exact and erases the deficit the paper measures.  The assertions
therefore check what survives the scale-down: LazyLSH's absolute quality
(ratio ~1.02-1.05, the paper's level), its clear win over the l2-based
SRS, and near-parity with C2LSH.
"""

import numpy as np

from bench_common import (
    c2lsh_index,
    dataset_split,
    ground_truth,
    lazy_index,
    print_tables,
    srs_index,
)
from repro.eval import overall_ratio
from repro.eval.harness import ResultTable

DATASETS = ("inria", "sun", "labelme", "mnist")
K_SWEEP = (10, 40, 70, 100)
P = 0.5


def _avg_ratio(engine, name: str, k: int) -> float:
    split = dataset_split(name)
    _, true_dists = ground_truth(name, k, P)
    ratios = []
    for qi, query in enumerate(split.queries):
        result = engine.knn(query, k, P)
        ratios.append(overall_ratio(result.distances, true_dists[qi]))
    return float(np.mean(ratios))


def run() -> list[ResultTable]:
    tables = []
    for name in DATASETS:
        lazy = lazy_index(name)
        c2 = c2lsh_index(name)
        srs = srs_index(name)
        table = ResultTable(
            f"Figure 11 ({name}): avg overall ratio vs k (l{P:g})",
            ["k", "LazyLSH", "C2LSH", "SRS"],
        )
        for k in K_SWEEP:
            table.add_row(
                [
                    k,
                    round(_avg_ratio(lazy, name, k), 4),
                    round(_avg_ratio(c2, name, k), 4),
                    round(_avg_ratio(srs, name, k), 4),
                ]
            )
        tables.append(table)
    return tables


def test_fig11_ratio_vs_k(benchmark, capsys):
    tables = benchmark.pedantic(run, rounds=1, iterations=1)
    print_tables(capsys, tables)
    for table in tables:
        lazy_ratios = [row[1] for row in table.rows]
        c2_ratios = [row[2] for row in table.rows]
        srs_ratios = [row[3] for row in table.rows]
        # LazyLSH stays accurate in the fractional space.
        assert max(lazy_ratios) < 1.10
        # ...and beats the l2-based SRS on average.
        assert np.mean(lazy_ratios) <= np.mean(srs_ratios) + 1e-6
        # Near-parity with C2LSH at this scale (see module docstring).
        assert np.mean(lazy_ratios) <= np.mean(c2_ratios) + 0.05


if __name__ == "__main__":
    for table in run():
        print(table.render())
        print()
